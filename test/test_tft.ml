(* Tests for TFT dataset construction (the estimator has its own
   suite in Test_estimator). *)

let check_close tol = Alcotest.(check (float tol))

(* ---------------- Dataset ---------------- *)

let clipper_dataset ?(snapshot_every = 10) ?(freq_points = 20) () =
  let nl =
    Circuits.Library.clipper
      ~input_wave:
        (Circuit.Netlist.Sine { offset = 0.3; ampl = 0.5; freq = 1e6; phase = 0.0 })
      ()
  in
  let mna =
    Engine.Mna.build ~inputs:[ Circuits.Library.clipper_input ]
      ~outputs:[ Circuits.Library.clipper_output ] nl
  in
  let opts = { Engine.Tran.default_opts with Engine.Tran.snapshot_every } in
  let run = Engine.Tran.run ~opts mna ~t_stop:1e-6 ~dt:1e-8 in
  ( mna,
    Tft.Dataset.of_snapshots ~mna ~estimator:(Tft.Estimator.make ())
      ~freqs_hz:(Signal.Grid.logspace 1e4 1e9 freq_points)
      run.Engine.Tran.snapshots )

let test_dataset_shapes () =
  let _, ds = clipper_dataset () in
  Alcotest.(check int) "samples" 11 (Array.length ds.Tft.Dataset.samples);
  Alcotest.(check int) "freqs" 20 (Array.length ds.Tft.Dataset.freqs_hz);
  Alcotest.(check int) "inputs" 1 ds.Tft.Dataset.n_inputs;
  Alcotest.(check int) "outputs" 1 ds.Tft.Dataset.n_outputs;
  Array.iter
    (fun (s : Tft.Dataset.sample) ->
      Alcotest.(check int) "per-sample freq count" 20 (Array.length s.Tft.Dataset.h);
      Alcotest.(check int) "estimator dim" 1 (Array.length s.Tft.Dataset.x))
    ds.Tft.Dataset.samples

let test_dataset_h0_is_low_freq_limit () =
  (* H(0) equals the limit of H(s) at very low frequency *)
  let _, ds = clipper_dataset () in
  let s = ds.Tft.Dataset.samples.(4) in
  let h_low = Linalg.Cmat.get s.Tft.Dataset.h.(0) 0 0 in
  let h0 = Linalg.Cmat.get s.Tft.Dataset.h0 0 0 in
  Alcotest.(check bool) "H(1e4) close to H(0)" true
    (Complex.norm (Complex.sub h_low h0) < 1e-2 *. Float.max (Complex.norm h0) 1e-3);
  check_close 1e-12 "H(0) real" 0.0 h0.Complex.im

let test_dataset_dynamic_part_zero_at_dc () =
  let _, ds = clipper_dataset () in
  let dyn = Tft.Dataset.dynamic_part ds in
  Array.iter
    (fun (s : Tft.Dataset.sample) ->
      (* subtracting H0 leaves the low-frequency sample nearly zero *)
      let h_low = Linalg.Cmat.get s.Tft.Dataset.h.(0) 0 0 in
      Alcotest.(check bool) "dynamic part small at low f" true
        (Complex.norm h_low < 2e-2))
    dyn.Tft.Dataset.samples

let test_dataset_matches_ac_at_dc_point () =
  (* the first snapshot is the DC operating point: its H row must equal an
     independent AC sweep of the circuit linearized there *)
  let mna, ds = clipper_dataset () in
  let s0 = ds.Tft.Dataset.samples.(0) in
  let freqs = ds.Tft.Dataset.freqs_hz in
  let at = Engine.Dc.solve mna in
  let h_ac = Engine.Ac.sweep_siso mna ~at ~freqs_hz:freqs in
  Array.iteri
    (fun l f ->
      let h_tft = Linalg.Cmat.get s0.Tft.Dataset.h.(l) 0 0 in
      Alcotest.(check bool)
        (Printf.sprintf "H at %g Hz" f)
        true
        (Complex.norm (Complex.sub h_tft h_ac.(l)) < 1e-9))
    freqs

let test_dataset_siso_slice () =
  let _, ds = clipper_dataset () in
  let xs, data = Tft.Dataset.siso ds ~input:0 ~output:0 in
  Alcotest.(check int) "rows = samples" (Array.length ds.Tft.Dataset.samples)
    (Array.length xs);
  Alcotest.(check int) "cols = freqs" 20 (Array.length data.(0));
  let direct = Linalg.Cmat.get ds.Tft.Dataset.samples.(3).Tft.Dataset.h.(7) 0 0 in
  Alcotest.(check bool) "values match" true (data.(3).(7) = direct)

let test_dataset_dc_trace_varies () =
  (* the clipper's DC small-signal gain varies strongly along the sweep *)
  let _, ds = clipper_dataset () in
  let dc = Tft.Dataset.dc_trace ds ~input:0 ~output:0 in
  let lo = Array.fold_left Float.min Float.infinity dc in
  let hi = Array.fold_left Float.max Float.neg_infinity dc in
  Alcotest.(check bool) "gain compresses" true (hi -. lo > 0.2)

let test_dataset_thin () =
  let _, ds = clipper_dataset ~snapshot_every:2 () in
  let thinned = Tft.Dataset.thin ds ~min_dx:0.1 in
  Alcotest.(check bool) "fewer samples" true
    (Array.length thinned.Tft.Dataset.samples
    < Array.length ds.Tft.Dataset.samples);
  (* kept samples are pairwise separated *)
  let kept = thinned.Tft.Dataset.samples in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if i < j then
            Alcotest.(check bool) "separation" true
              (Float.abs (a.Tft.Dataset.x.(0) -. b.Tft.Dataset.x.(0)) >= 0.1 -. 1e-12))
        kept)
    kept

let test_dataset_sort_by_x0 () =
  let _, ds = clipper_dataset () in
  let sorted = Tft.Dataset.sort_by_x0 ds in
  let xs = Array.map (fun s -> s.Tft.Dataset.x.(0)) sorted.Tft.Dataset.samples in
  let ok = ref true in
  for k = 1 to Array.length xs - 1 do
    if xs.(k) < xs.(k - 1) then ok := false
  done;
  Alcotest.(check bool) "sorted" true !ok

let cmat_identical a b =
  Linalg.Cmat.rows a = Linalg.Cmat.rows b
  && Linalg.Cmat.cols a = Linalg.Cmat.cols b
  &&
  let ok = ref true in
  for i = 0 to Linalg.Cmat.rows a - 1 do
    for j = 0 to Linalg.Cmat.cols a - 1 do
      (* bitwise float comparison: parallel construction promises it *)
      if Linalg.Cmat.get a i j <> Linalg.Cmat.get b i j then ok := false
    done
  done;
  !ok

let sample_identical (a : Tft.Dataset.sample) (b : Tft.Dataset.sample) =
  a.Tft.Dataset.time = b.Tft.Dataset.time
  && a.Tft.Dataset.x = b.Tft.Dataset.x
  && a.Tft.Dataset.u = b.Tft.Dataset.u
  && a.Tft.Dataset.y = b.Tft.Dataset.y
  && cmat_identical a.Tft.Dataset.h0 b.Tft.Dataset.h0
  && Array.length a.Tft.Dataset.h = Array.length b.Tft.Dataset.h
  && Array.for_all2 cmat_identical a.Tft.Dataset.h b.Tft.Dataset.h

let test_dataset_pool_bit_identical () =
  (* the paper's buffer circuit: of_snapshots through a domain pool must
     be bit-identical to the sequential path for any domain count *)
  let mna =
    Circuits.Buffer.mna ~input_wave:(Circuits.Buffer.training_wave ~freq:1e6 ()) ()
  in
  let opts = { Engine.Tran.default_opts with Engine.Tran.snapshot_every = 4 } in
  let run = Engine.Tran.run ~opts mna ~t_stop:1e-6 ~dt:(1e-6 /. 80.0) in
  let estimator = Tft.Estimator.make () in
  let freqs_hz = Signal.Grid.frequencies_hz ~f_min:1.0 ~f_max:1e10 ~points:6 in
  let build ?pool () =
    Tft.Dataset.of_snapshots ?pool ~mna ~estimator ~freqs_hz
      run.Engine.Tran.snapshots
  in
  let seq = build () in
  Alcotest.(check bool) "has samples" true (Array.length seq.Tft.Dataset.samples > 4);
  List.iter
    (fun domains ->
      let par = Exec.with_pool ~domains (fun pool -> build ~pool ()) in
      Alcotest.(check int)
        (Printf.sprintf "samples (domains = %d)" domains)
        (Array.length seq.Tft.Dataset.samples)
        (Array.length par.Tft.Dataset.samples);
      Array.iteri
        (fun k sa ->
          Alcotest.(check bool)
            (Printf.sprintf "sample %d bit-identical (domains = %d)" k domains)
            true
            (sample_identical sa par.Tft.Dataset.samples.(k)))
        seq.Tft.Dataset.samples)
    [ 1; 2; 4 ]

let test_ambiguity_detects_training_hysteresis () =
  (* fast pump: the 1-D estimator is ambiguous (up/down sweeps disagree);
     slow pump: it is not. This is the diagnostic behind the paper's
     requirement that each state be "uniquely defined" by x(t). *)
  let dataset_at freq =
    let period = 1.0 /. freq in
    let mna = Circuits.Buffer.mna ~input_wave:(Circuits.Buffer.training_wave ~freq ()) () in
    let opts = { Engine.Tran.default_opts with Engine.Tran.snapshot_every = 4 } in
    let run = Engine.Tran.run ~opts mna ~t_stop:period ~dt:(period /. 400.0) in
    Tft.Dataset.of_snapshots ~mna ~estimator:(Tft.Estimator.make ())
      ~freqs_hz:[| 1e9 |] run.Engine.Tran.snapshots
  in
  let ambiguity ds =
    let xs = Array.map (fun (s : Tft.Dataset.sample) -> s.Tft.Dataset.x) ds.Tft.Dataset.samples in
    let values =
      Array.map
        (fun (s : Tft.Dataset.sample) ->
          Complex.norm (Linalg.Cmat.get s.Tft.Dataset.h.(0) 0 0))
        ds.Tft.Dataset.samples
    in
    Tft.Estimator.ambiguity ~xs ~values ~radius:0.005
  in
  let fast = ambiguity (dataset_at 100e6) in
  let slow = ambiguity (dataset_at 1e6) in
  Alcotest.(check bool)
    (Printf.sprintf "fast pump ambiguous (%.3f) vs slow (%.4f)" fast slow)
    true
    (fast > 5.0 *. Float.max slow 1e-6)

let suite =
  [
    Alcotest.test_case "dataset shapes" `Quick test_dataset_shapes;
    Alcotest.test_case "dataset h0 low-freq limit" `Quick test_dataset_h0_is_low_freq_limit;
    Alcotest.test_case "dataset dynamic part" `Quick test_dataset_dynamic_part_zero_at_dc;
    Alcotest.test_case "dataset matches ac" `Quick test_dataset_matches_ac_at_dc_point;
    Alcotest.test_case "dataset siso slice" `Quick test_dataset_siso_slice;
    Alcotest.test_case "dataset dc trace" `Quick test_dataset_dc_trace_varies;
    Alcotest.test_case "dataset thin" `Quick test_dataset_thin;
    Alcotest.test_case "dataset sort" `Quick test_dataset_sort_by_x0;
    Alcotest.test_case "dataset pool bit-identical" `Quick
      test_dataset_pool_bit_identical;
    Alcotest.test_case "ambiguity detects hysteresis" `Slow test_ambiguity_detects_training_hysteresis;
  ]
