(* Dedicated suite for the state estimator (eq. (4) of the paper):
   dimension/coords contracts, delay validation and the ambiguity
   diagnostic. The dataset-level tests stay in Test_tft. *)

let check_close tol = Alcotest.(check (float tol))

let test_estimator_dimension () =
  Alcotest.(check int) "q=1" 1 (Tft.Estimator.dimension (Tft.Estimator.make ()));
  Alcotest.(check int) "q=3" 3
    (Tft.Estimator.dimension (Tft.Estimator.make ~delays:[ 1e-9; 2e-9 ] ()))

let test_estimator_coords () =
  let u t = 2.0 *. t in
  let e = Tft.Estimator.make ~delays:[ 0.5 ] () in
  let x = Tft.Estimator.coords e ~u 3.0 in
  check_close 1e-12 "x0 = u(t)" 6.0 x.(0);
  check_close 1e-12 "x1 = u(t - 0.5)" 5.0 x.(1)

let test_estimator_coords_ordering () =
  (* coordinates follow the constructor's delay list order, after the
     instantaneous sample *)
  let u t = t in
  let e = Tft.Estimator.make ~delays:[ 0.25; 1.0; 0.5 ] () in
  let x = Tft.Estimator.coords e ~u 2.0 in
  Alcotest.(check int) "dimension" 4 (Array.length x);
  check_close 1e-12 "x0" 2.0 x.(0);
  check_close 1e-12 "x1" 1.75 x.(1);
  check_close 1e-12 "x2" 1.0 x.(2);
  check_close 1e-12 "x3" 1.5 x.(3)

let test_estimator_negative_delay () =
  Alcotest.(check bool) "negative delay rejected" true
    (match Tft.Estimator.make ~delays:[ -1.0 ] () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_estimator_zero_delay () =
  (* a zero delay duplicates x0 and can never disambiguate anything *)
  Alcotest.(check bool) "zero delay rejected" true
    (match Tft.Estimator.make ~delays:[ 0.0 ] () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_estimator_ambiguity () =
  (* two samples with identical x but different values: ambiguity = spread *)
  let xs = [| [| 1.0 |]; [| 1.0 |]; [| 2.0 |] |] in
  let values = [| 0.0; 3.0; 100.0 |] in
  check_close 1e-12 "ambiguity" 3.0
    (Tft.Estimator.ambiguity ~xs ~values ~radius:0.1)

let test_estimator_ambiguity_separated () =
  (* no pair within the radius: the diagnostic reports zero *)
  let xs = [| [| 0.0 |]; [| 1.0 |]; [| 2.0 |] |] in
  let values = [| 0.0; 50.0; 100.0 |] in
  check_close 1e-12 "separated" 0.0
    (Tft.Estimator.ambiguity ~xs ~values ~radius:0.1)

let test_estimator_ambiguity_degenerate () =
  (* fewer than two samples can't be ambiguous *)
  check_close 1e-12 "empty" 0.0
    (Tft.Estimator.ambiguity ~xs:[||] ~values:[||] ~radius:1.0);
  check_close 1e-12 "singleton" 0.0
    (Tft.Estimator.ambiguity ~xs:[| [| 1.0 |] |] ~values:[| 7.0 |] ~radius:1.0)

let test_estimator_ambiguity_resolved_by_delay () =
  (* the motivating case: a rising and a falling pass through the same
     input level carry different outputs — one coordinate sees a clash,
     adding the delayed coordinate separates the passes *)
  let values = [| 1.0; 5.0 |] in
  let xs_q1 = [| [| 0.5 |]; [| 0.5 |] |] in
  let xs_q2 = [| [| 0.5; 0.2 |]; [| 0.5; 0.8 |] |] in
  Alcotest.(check bool) "q=1 ambiguous" true
    (Tft.Estimator.ambiguity ~xs:xs_q1 ~values ~radius:0.05 > 3.0);
  check_close 1e-12 "q=2 resolved" 0.0
    (Tft.Estimator.ambiguity ~xs:xs_q2 ~values ~radius:0.05)

let suite =
  [
    Alcotest.test_case "dimension" `Quick test_estimator_dimension;
    Alcotest.test_case "coords" `Quick test_estimator_coords;
    Alcotest.test_case "coords ordering" `Quick test_estimator_coords_ordering;
    Alcotest.test_case "negative delay" `Quick test_estimator_negative_delay;
    Alcotest.test_case "zero delay" `Quick test_estimator_zero_delay;
    Alcotest.test_case "ambiguity" `Quick test_estimator_ambiguity;
    Alcotest.test_case "ambiguity separated" `Quick
      test_estimator_ambiguity_separated;
    Alcotest.test_case "ambiguity degenerate" `Quick
      test_estimator_ambiguity_degenerate;
    Alcotest.test_case "ambiguity resolved by delay" `Quick
      test_estimator_ambiguity_resolved_by_delay;
  ]
