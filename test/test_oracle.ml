(* The oracle subsystem's own suite: closed-form sanity of the Ladder
   and Synth references, the pole-matching metrics, the battery's
   run/json contract, and the randomized verification properties driven
   by Oracle.Gen. Every property prints its failing {seed; size} record;
   QCHECK_SEED reproduces a whole QCheck run. *)

let check_close tol = Alcotest.(check (float tol))

module Ladder = Oracle.Ladder

(* ---------------- Ladder closed forms ---------------- *)

let test_rc_exact_shape () =
  let o = Ladder.rc ~stages:5 () in
  Alcotest.(check int) "pole count = stages" 5
    (Array.length o.Ladder.exact.Ladder.poles);
  Array.iter
    (fun p ->
      Alcotest.(check bool) "stable real pole" true
        (p.Complex.re < 0.0 && p.Complex.im = 0.0))
    o.Ladder.exact.Ladder.poles;
  (* the unloaded ladder passes DC straight through *)
  check_close 1e-12 "dc gain" 1.0 (Ladder.dc_gain o.Ladder.exact)

let test_rc_poles_distinct () =
  (* the Dirichlet-Neumann spectrum is simple: no repeated poles, so VF
     residue comparison per pole slot is well-posed *)
  let o = Ladder.rc ~stages:6 () in
  let ps = o.Ladder.exact.Ladder.poles in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if i < j then
            Alcotest.(check bool) "distinct" true
              (Float.abs (a.Complex.re -. b.Complex.re)
              > 1e-9 *. Float.abs a.Complex.re))
        ps)
    ps

let test_rlc_exact_shape () =
  let o = Ladder.rlc () in
  (match o.Ladder.exact.Ladder.poles with
  | [| p; q |] ->
      Alcotest.(check bool) "conjugate pair" true
        (p.Complex.re = q.Complex.re
        && p.Complex.im = -.q.Complex.im
        && p.Complex.im > 0.0 && p.Complex.re < 0.0)
  | _ -> Alcotest.fail "rlc must have exactly one pair");
  check_close 1e-12 "dc gain" 1.0 (Ladder.dc_gain o.Ladder.exact)

let test_rlc_overdamped_rejected () =
  Alcotest.(check bool) "overdamped rejected" true
    (match Ladder.rlc ~r:1e6 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_pole_matching_metrics () =
  let exact = [| { Complex.re = -1.0; im = 2.0 }; { Complex.re = -1.0; im = -2.0 } |] in
  (* permuted but identical: zero error *)
  let permuted = [| exact.(1); exact.(0) |] in
  check_close 1e-15 "permutation invariant" 0.0
    (Ladder.max_rel_pole_error ~exact ~fitted:permuted);
  (* count mismatch: infinity, never a silent partial match *)
  Alcotest.(check bool) "count mismatch is infinite" true
    (Ladder.max_rel_pole_error ~exact ~fitted:[| exact.(0) |] = Float.infinity);
  let shifted = [| { Complex.re = -1.1; im = 2.0 }; { Complex.re = -1.1; im = -2.0 } |] in
  check_close 1e-12 "relative shift" (0.1 /. sqrt 5.0)
    (Ladder.max_rel_pole_error ~exact ~fitted:shifted)

(* ---------------- Synth ---------------- *)

let test_synth_validate () =
  List.iter
    (fun p ->
      Alcotest.(check bool) "rejected" true
        (match Oracle.Synth.model_of p with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [
      { Oracle.Synth.default with Oracle.Synth.freq_alpha = 1.0 };
      { Oracle.Synth.default with Oracle.Synth.state_alpha = 0.0 };
      { Oracle.Synth.default with Oracle.Synth.x_hi = 0.0 };
    ]

let test_synth_dataset_self_consistent () =
  (* the synthetic dataset's H(x, 0) must equal d/dx of its quasi-static
     output trace — the same self-consistency a real circuit's TFT data
     exhibits, and what the extractor's static integration relies on *)
  let ds = Oracle.Synth.dataset_of ~samples:21 ~freqs:8 Oracle.Synth.default in
  let samples = ds.Tft.Dataset.samples in
  for k = 1 to Array.length samples - 2 do
    let x_prev = samples.(k - 1).Tft.Dataset.x.(0)
    and x_next = samples.(k + 1).Tft.Dataset.x.(0) in
    let fd =
      (samples.(k + 1).Tft.Dataset.y.(0) -. samples.(k - 1).Tft.Dataset.y.(0))
      /. (x_next -. x_prev)
    in
    let h0 = (Linalg.Cmat.get samples.(k).Tft.Dataset.h0 0 0).Complex.re in
    (* central difference on a smooth rational: second-order accurate *)
    Alcotest.(check bool)
      (Printf.sprintf "H(x,0) = dy/dx at sample %d" k)
      true
      (Float.abs (fd -. h0) < 2e-2 *. Float.max 1.0 (Float.abs h0))
  done

(* ---------------- battery ---------------- *)

let test_metric_nan_fails () =
  Alcotest.(check bool) "nan fails" false
    (Oracle.Battery.metric_passed
       { Oracle.Battery.metric = "m"; value = Float.nan; bound = 1.0 });
  Alcotest.(check bool) "boundary passes" true
    (Oracle.Battery.metric_passed
       { Oracle.Battery.metric = "m"; value = 1.0; bound = 1.0 })

let test_battery_quick () =
  let verdicts = Oracle.Battery.run ~quick:true () in
  Alcotest.(check int) "ten checks" 10 (List.length verdicts);
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "%s passes" v.Oracle.Battery.check)
        true
        (Oracle.Battery.verdict_passed v))
    verdicts;
  (* the JSON verdict re-parses through the repo's own reader with the
     advertised schema *)
  let root = Minijson.parse (Oracle.Battery.json ~quick:true verdicts) in
  Alcotest.(check bool) "schema_version" true
    (Minijson.num_field root "schema_version" = Some 1.0);
  Alcotest.(check bool) "kind" true
    (Minijson.str_field root "kind" = Some "oracle");
  Alcotest.(check bool) "passed" true
    (Minijson.field root "passed" = Some (Minijson.Bool true));
  match Minijson.arr_field root "checks" with
  | Some checks ->
      Alcotest.(check int) "check entries" 10 (List.length checks);
      List.iter
        (fun c ->
          Alcotest.(check bool) "has metrics" true
            (Minijson.arr_field c "metrics" <> None))
        checks
  | None -> Alcotest.fail "missing checks array"

let test_battery_error_capture () =
  (* verdicts with an error never pass, whatever their metrics say *)
  Alcotest.(check bool) "error fails" false
    (Oracle.Battery.verdict_passed
       {
         Oracle.Battery.check = "c";
         seconds = 0.0;
         metrics = [];
         error = Some "boom";
       })

(* ---------------- properties ---------------- *)

let sample_rational (r : Ladder.rational) =
  let ss = Array.map Signal.Grid.s_of_hz Oracle.Gen.grid_hz in
  (ss, Array.map (Ladder.eval r) ss)

(* 1. VF recovers random stable pole sets from exact rational data *)
let prop_vf_pole_recovery =
  QCheck.Test.make ~count:100 ~name:"vf recovers random rational poles"
    (Oracle.Gen.arb ())
    (fun s ->
      let r = Oracle.Gen.rational s in
      let ss, data = sample_rational r in
      let n = Array.length r.Ladder.poles in
      let opts =
        { Vf.Vfit.default_frequency_opts with Vf.Vfit.iterations = 30 }
      in
      let model, info =
        Vf.Vfit.fit ~opts
          ~poles:(Vf.Pole.initial_frequency ~f_min:1e2 ~f_max:1e7 ~count:n)
          ~points:ss ~data:[| data |] ()
      in
      let pole_err =
        Ladder.max_rel_pole_error ~exact:r.Ladder.poles
          ~fitted:model.Vf.Model.poles
      in
      let residue_err =
        Ladder.max_rel_residue_error ~exact:r ~model ~elem:0
      in
      if pole_err <= 1e-6 && residue_err <= 1e-6 then true
      else
        QCheck.Test.fail_reportf
          "pole_err %.3e residue_err %.3e rms %.3e for %d poles" pole_err
          residue_err info.Vf.Vfit.rms n)

(* 2. state-axis VF fits random rational residue trajectories to the
   class error bound *)
let prop_rvf_residue_fit =
  QCheck.Test.make ~count:100 ~name:"state vf fits rational residue traces"
    (Oracle.Gen.arb ())
    (fun s ->
      let xs, data = Oracle.Gen.residue_traces s in
      let points = Array.map (fun x -> { Complex.re = x; im = 0.0 }) xs in
      let scale =
        Array.fold_left
          (fun acc row ->
            Array.fold_left (fun a z -> Float.max a (Complex.norm z)) acc row)
          1e-30 data
      in
      let opts =
        { Vf.Vfit.default_state_opts with Vf.Vfit.min_imag = 0.02; iterations = 30 }
      in
      let _, info =
        Vf.Vfit.fit_auto ~opts
          ~make_poles:(fun count ->
            Vf.Pole.initial_real_axis ~lo:0.0 ~hi:1.0 ~count)
          ~start:2 ~step:2 ~max_poles:8 ~tol:(1e-7 *. scale) ~points ~data ()
      in
      if info.Vf.Vfit.rms <= 1e-7 *. scale then true
      else
        QCheck.Test.fail_reportf "state fit rms %.3e (scale %.3e, %d poles)"
          info.Vf.Vfit.rms scale info.Vf.Vfit.pole_count)

(* 3. parallel_map is bit-identical to the sequential path *)
let prop_parallel_map_bit_identical =
  QCheck.Test.make ~count:100 ~name:"parallel_map bit-identical to sequential"
    (Oracle.Gen.arb ~max_size:3 ())
    (fun s ->
      let r = Oracle.Gen.rational s in
      let ss = Array.map Signal.Grid.s_of_hz Oracle.Gen.grid_hz in
      let f z = Ladder.eval r z in
      let seq = Array.map f ss in
      let par = Exec.with_pool ~domains:2 (fun pool ->
          Exec.parallel_map ~pool f ss)
      in
      let identical = ref true in
      Array.iteri
        (fun i z ->
          if
            Int64.bits_of_float z.Complex.re
            <> Int64.bits_of_float par.(i).Complex.re
            || Int64.bits_of_float z.Complex.im
               <> Int64.bits_of_float par.(i).Complex.im
          then identical := false)
        seq;
      if !identical then true
      else QCheck.Test.fail_reportf "parallel result differs from sequential")

(* 4. a clean guarded AC sweep is bit-identical to the unguarded one *)
let prop_guarded_sweep_bit_identical =
  QCheck.Test.make ~count:100 ~name:"guarded ac sweep bit-identical"
    (Oracle.Gen.arb ~max_size:3 ())
    (fun s ->
      let o = Oracle.Gen.rc_ladder s in
      let mna =
        Engine.Mna.build ~inputs:[ o.Ladder.input ] ~outputs:[ o.Ladder.output ]
          o.Ladder.netlist
      in
      let at = Engine.Dc.solve mna in
      let ev = Engine.Mna.eval mna ~with_matrices:true ~time:0.0 at in
      let g = Option.get ev.Engine.Mna.g_mat
      and c = Option.get ev.Engine.Mna.c_mat in
      let ss = Array.map Signal.Grid.s_of_hz Oracle.Gen.grid_hz in
      let sweep ?guard () =
        let ws =
          Engine.Ac.make_ws ~b:(Engine.Mna.b_matrix mna)
            ~d:(Engine.Mna.d_matrix mna)
        in
        Engine.Ac.transfer_sweep ?guard ws ~g ~c ~ss
      in
      let plain = sweep () in
      let guarded = sweep ~guard:Guard.default () in
      let identical = ref true in
      Array.iteri
        (fun l h ->
          let a = Linalg.Cmat.get h 0 0
          and b = Linalg.Cmat.get guarded.(l) 0 0 in
          if
            Int64.bits_of_float a.Complex.re <> Int64.bits_of_float b.Complex.re
            || Int64.bits_of_float a.Complex.im <> Int64.bits_of_float b.Complex.im
          then identical := false)
        plain;
      if !identical then true
      else QCheck.Test.fail_reportf "guarded sweep differs on a clean run")

(* 5. the extracted model of a random linear ladder tracks the circuit
   under the paper's training signal *)
let prop_model_vs_circuit_transient =
  QCheck.Test.make ~count:100 ~name:"extracted model tracks random rc ladder"
    (Oracle.Gen.arb ~max_size:3 ())
    (fun s ->
      let o = Oracle.Gen.rc_ladder s in
      let mags = Array.map Complex.norm o.Ladder.exact.Ladder.poles in
      let w_min = Array.fold_left Float.min Float.infinity mags in
      let w_max = Array.fold_left Float.max 0.0 mags in
      let two_pi = 2.0 *. Float.pi in
      let f_train = w_min /. two_pi /. 50.0 in
      let wave =
        Circuit.Netlist.Sine
          { offset = 0.5; ampl = 0.4; freq = f_train; phase = 0.0 }
      in
      let t_stop = 1.0 /. f_train in
      let training =
        {
          Tft_rvf.Pipeline.wave;
          t_stop;
          dt = t_stop /. 240.0;
          snapshot_every = 8;
        }
      in
      let config =
        Tft_rvf.Pipeline.default_config_for ~points:16
          ~f_min:(w_min /. two_pi /. 30.0)
          ~f_max:(w_max /. two_pi *. 30.0)
          ~training ()
      in
      let outcome =
        Tft_rvf.Pipeline.extract ~config ~netlist:o.Ladder.netlist
          ~input:o.Ladder.input ~output:o.Ladder.output ()
      in
      let v =
        Tft_rvf.Report.validate ~model:outcome.Tft_rvf.Pipeline.model
          ~netlist:o.Ladder.netlist ~input:o.Ladder.input
          ~output:o.Ladder.output ~wave ~t_stop ~dt:(t_stop /. 240.0) ()
      in
      if v.Tft_rvf.Report.nrmse <= 1e-4 then true
      else
        QCheck.Test.fail_reportf "model-vs-circuit nrmse %.3e for %d stages"
          v.Tft_rvf.Report.nrmse s.Oracle.Gen.size)

let suite =
  [
    Alcotest.test_case "rc exact shape" `Quick test_rc_exact_shape;
    Alcotest.test_case "rc poles distinct" `Quick test_rc_poles_distinct;
    Alcotest.test_case "rlc exact shape" `Quick test_rlc_exact_shape;
    Alcotest.test_case "rlc overdamped rejected" `Quick
      test_rlc_overdamped_rejected;
    Alcotest.test_case "pole matching metrics" `Quick test_pole_matching_metrics;
    Alcotest.test_case "synth validate" `Quick test_synth_validate;
    Alcotest.test_case "synth dataset self-consistent" `Quick
      test_synth_dataset_self_consistent;
    Alcotest.test_case "metric nan fails" `Quick test_metric_nan_fails;
    Alcotest.test_case "battery quick" `Quick test_battery_quick;
    Alcotest.test_case "battery error capture" `Quick test_battery_error_capture;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false)
      [
        prop_vf_pole_recovery;
        prop_rvf_residue_fit;
        prop_parallel_map_bit_identical;
        prop_guarded_sweep_bit_identical;
        prop_model_vs_circuit_transient;
      ]
