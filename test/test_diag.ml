(* Tests for the diagnostics collector, its JSON serialization, the
   engine counters it exposes, and the graceful-degradation pipeline.

   The "be fallback" test is a regression test for a real bug: after a
   trapezoidal step retreated to backward Euler, the charge-derivative
   estimate was still computed with the trapezoidal formula against the
   stale qdot, poisoning every subsequent step. The test reconstructs
   the integrator equations externally from the reported trajectory and
   checks each step satisfies the difference scheme that was actually
   used; with the bug present the first post-fallback step violates its
   equation by ~2e-3 against ~1e-11 for the fix. *)

(* ---------------- collector unit tests ---------------- *)

let test_counters_and_stats () =
  let d = Diag.create () in
  let diag = Some d in
  Diag.incr diag "c";
  Diag.incr diag "c";
  Diag.add diag "c" 3;
  Diag.observe diag "s" 1.0;
  Diag.observe diag "s" 3.0;
  Diag.observe diag "s" 2.0;
  let r = Diag.report d in
  Alcotest.(check int) "counter accumulates" 5 (Diag.counter r "c");
  Alcotest.(check int) "absent counter is 0" 0 (Diag.counter r "nope");
  let st = List.find (fun (s : Diag.stat) -> s.Diag.name = "s") r.Diag.stats in
  Alcotest.(check int) "samples" 3 st.Diag.samples;
  Alcotest.(check (float 1e-12)) "min" 1.0 st.Diag.min;
  Alcotest.(check (float 1e-12)) "max" 3.0 st.Diag.max;
  Alcotest.(check (float 1e-12)) "last" 2.0 st.Diag.last;
  Alcotest.(check (float 1e-12)) "mean" 2.0 (Diag.mean st)

let test_notes_and_events () =
  let d = Diag.create () in
  let diag = Some d in
  Diag.note diag "k" "old";
  Diag.note diag "k" "new";
  Diag.info diag ~stage:"a" "fyi";
  Diag.warn diag ~stage:"b" "uh oh";
  let r = Diag.report d in
  Alcotest.(check (option string)) "latest note wins" (Some "new")
    (Diag.find_note r "k");
  Alcotest.(check int) "two events" 2 (List.length r.Diag.events);
  Alcotest.(check int) "one warning" 1 (List.length (Diag.warnings r));
  Alcotest.(check bool) "no errors yet" false (Diag.has_errors r);
  Diag.error diag ~stage:"c" "boom";
  Alcotest.(check bool) "error detected" true (Diag.has_errors (Diag.report d))

let test_span_survives_raise () =
  let d = Diag.create () in
  let diag = Some d in
  Alcotest.(check int) "span returns" 42 (Diag.span diag "ok" (fun () -> 42));
  (try Diag.span diag "bad" (fun () -> failwith "x")
   with Failure _ -> 0)
  |> ignore;
  let stages =
    List.map (fun (s : Diag.span) -> s.Diag.stage) (Diag.report d).Diag.spans
  in
  Alcotest.(check (list string)) "both spans recorded" [ "ok"; "bad" ] stages;
  List.iter
    (fun (s : Diag.span) ->
      Alcotest.(check bool) "non-negative duration" true (s.Diag.seconds >= 0.0))
    (Diag.report d).Diag.spans

let test_none_is_noop () =
  (* every entry point must tolerate an absent collector *)
  Diag.incr None "c";
  Diag.add None "c" 2;
  Diag.observe None "s" 1.0;
  Diag.note None "k" "v";
  Diag.info None ~stage:"a" "m";
  Diag.warn None ~stage:"a" "m";
  Diag.error None ~stage:"a" "m";
  Alcotest.(check int) "span still runs f" 7 (Diag.span None "x" (fun () -> 7))

let test_diag_json_shape_and_escaping () =
  let d = Diag.create () in
  let diag = Some d in
  Diag.incr diag "tran.steps";
  Diag.observe diag "vf.freq.sigma_rms" 0.5;
  Diag.note diag "quoted" "say \"hi\"\nthere";
  Diag.warn diag ~stage:"engine.tran" "tab\there";
  let js = Tft_rvf.Report.diag_json (Diag.report d) in
  let contains needle =
    let nl = String.length needle and hl = String.length js in
    let rec go i = i + nl <= hl && (String.sub js i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "json has %s" s) true (contains s))
    [
      "\"schema_version\": 1";
      "\"spans\"";
      "\"counters\"";
      "\"tran.steps\": 1";
      "\"stats\"";
      "\"vf.freq.sigma_rms\"";
      "\"events\"";
      "\"notes\"";
      (* escaping: embedded quote, newline and tab must be escaped *)
      "say \\\"hi\\\"\\nthere";
      "tab\\there";
    ];
  Alcotest.(check bool) "no raw newline inside strings" true
    (not (contains "say \"hi\""))

(* ---------------- engine counters ---------------- *)

(* A stiff rectifier: a fast diode charging a slow RC through a small
   series resistance. With max_iter = 20 the pulse edge makes exactly
   one trapezoidal step fail and retreat to backward Euler. *)
let stiff_circuit () =
  Circuit.Netlist.make
    [
      Circuit.Netlist.vsource ~name:"Vin" "in" Circuit.Netlist.ground
        (Circuit.Netlist.Pulse
           {
             low = 0.0;
             high = 5.0;
             delay = 2e-6;
             rise = 1e-9;
             width = 50e-6;
             period = 1e-3;
           });
      Circuit.Netlist.resistor ~name:"Rs" "in" "a" 10.0;
      Circuit.Netlist.diode ~name:"D1" "a" "b" ();
      Circuit.Netlist.capacitor ~name:"C1" "b" Circuit.Netlist.ground 1e-9;
      Circuit.Netlist.resistor ~name:"Rl" "b" Circuit.Netlist.ground 1e3;
    ]

let stiff_mna () =
  Engine.Mna.build ~inputs:[ "Vin" ] ~outputs:[ Engine.Mna.Node "b" ]
    (stiff_circuit ())

let run_stiff ~diag =
  let opts =
    {
      Engine.Tran.default_opts with
      Engine.Tran.newton = { Engine.Dc.default_opts with Engine.Dc.max_iter = 20 };
    }
  in
  let mna = stiff_mna () in
  (mna, Engine.Tran.run ~opts ~diag mna ~t_stop:20e-6 ~dt:5e-7)

let test_dc_solve_counts_iterations () =
  let d = Diag.create () in
  let v = Engine.Dc.solve ~diag:d ~time:3e-6 (stiff_mna ()) in
  Alcotest.(check bool) "solved" true (Array.length v > 0);
  Alcotest.(check bool) "dc.newton_iterations recorded" true
    (Diag.counter (Diag.report d) "dc.newton_iterations" > 0)

let test_newton_counted_per_iteration () =
  (* regression: the counter used to be bumped once per time step, not
     once per Newton iteration, so it always equalled the step count *)
  let d = Diag.create () in
  let _, r = run_stiff ~diag:d in
  let steps = Array.length r.Engine.Tran.times - 1 in
  let report = Diag.report d in
  Alcotest.(check int) "tran.steps counter" steps
    (Diag.counter report "tran.steps");
  Alcotest.(check int) "field and counter agree" r.Engine.Tran.newton_iterations
    (Diag.counter report "tran.newton_iterations");
  Alcotest.(check bool)
    (Printf.sprintf "newton %d strictly exceeds steps %d"
       r.Engine.Tran.newton_iterations steps)
    true
    (r.Engine.Tran.newton_iterations > steps)

(* "trapezoidal step at t=... retreated" — pull the time back out *)
let parse_fallback_time msg =
  match String.index_opt msg '=' with
  | None -> None
  | Some i ->
      let rest = String.sub msg (i + 1) (String.length msg - i - 1) in
      let stop =
        match String.index_opt rest ' ' with
        | Some j -> j
        | None -> String.length rest
      in
      float_of_string_opt (String.sub rest 0 stop)

let test_be_fallback_consistency () =
  let d = Diag.create () in
  let mna, r = run_stiff ~diag:d in
  let report = Diag.report d in
  Alcotest.(check bool) "at least one fallback" true
    (r.Engine.Tran.be_fallbacks >= 1);
  Alcotest.(check int) "fallback counter agrees" r.Engine.Tran.be_fallbacks
    (Diag.counter report "tran.be_fallbacks");
  let fb_times =
    List.filter_map
      (fun (e : Diag.event) ->
        if e.Diag.level = Diag.Warning && e.Diag.stage = "engine.tran" then
          parse_fallback_time e.Diag.message
        else None)
      report.Diag.events
  in
  Alcotest.(check int) "every fallback leaves a parseable warning"
    r.Engine.Tran.be_fallbacks (List.length fb_times);
  (* Reconstruct the integrator equations step by step. A trapezoidal
     step must satisfy i(v_k) + (2/h)(q_k − q_{k−1}) − qdot_{k−1} = 0
     and a fallback step i(v_k) + (1/h)(q_k − q_{k−1}) = 0, with qdot
     propagated by the formula of the scheme actually used. *)
  let n = Engine.Mna.size mna in
  let times = r.Engine.Tran.times and states = r.Engine.Tran.states in
  let ev0 = Engine.Mna.eval mna ~with_matrices:false ~time:0.0 states.(0) in
  let q_prev = ref ev0.Engine.Mna.q_vec in
  let qdot = ref (Array.make n 0.0) in
  let worst = ref 0.0 in
  for k = 1 to Array.length times - 1 do
    let h = times.(k) -. times.(k - 1) in
    let is_fb =
      List.exists (fun t -> Float.abs (t -. times.(k)) < h /. 2.0) fb_times
    in
    let ev =
      Engine.Mna.eval mna ~with_matrices:false ~time:times.(k) states.(k)
    in
    let q = ev.Engine.Mna.q_vec in
    let alpha = if is_fb then 1.0 /. h else 2.0 /. h in
    for j = 0 to n - 1 do
      let qterm = if is_fb then 0.0 else !qdot.(j) in
      let f =
        ev.Engine.Mna.i_vec.(j) +. (alpha *. (q.(j) -. (!q_prev).(j))) -. qterm
      in
      worst := Float.max !worst (Float.abs f)
    done;
    qdot :=
      Array.init n (fun j ->
          if is_fb then (q.(j) -. (!q_prev).(j)) /. h
          else ((2.0 /. h) *. (q.(j) -. (!q_prev).(j))) -. !qdot.(j));
    q_prev := q
  done;
  (* fixed build: ~1e-11; with the stale-qdot bug: ~2e-3 *)
  Alcotest.(check bool)
    (Printf.sprintf "worst integrator residual %.3e < 1e-6" !worst)
    true (!worst < 1e-6)

let test_adaptive_counters_agree () =
  let d = Diag.create () in
  let mna = stiff_mna () in
  let r = Engine.Tran.run_adaptive ~diag:d mna ~t_stop:20e-6 ~dt:5e-7 in
  let report = Diag.report d in
  Alcotest.(check int) "rejection counter agrees" r.Engine.Tran.step_rejections
    (Diag.counter report "tran.step_rejections");
  Alcotest.(check int) "accepted steps counted"
    (Array.length r.Engine.Tran.times - 1)
    (Diag.counter report "tran.steps")

(* ---------------- vector fitting failure reporting ---------------- *)

let test_fit_auto_reports_reason () =
  (* one data point can never support a 4-pole model: every escalation
     attempt fails, and the raised message must carry the reason *)
  let points = [| Complex.{ re = 0.0; im = 1.0 } |] in
  let data = [| [| Complex.one |] |] in
  let make_poles n =
    Array.init n (fun k -> { Complex.re = -1.0 -. float_of_int k; im = 0.0 })
  in
  let d = Diag.create () in
  let raised =
    try
      let _ =
        Vf.Vfit.fit_auto ~diag:d ~label:"vf.test" ~make_poles ~start:4
          ~max_poles:4 ~tol:1e-6 ~points ~data ()
      in
      None
    with Invalid_argument m -> Some m
  in
  match raised with
  | None -> Alcotest.fail "fit_auto should have failed"
  | Some m ->
      let contains needle =
        let nl = String.length needle and hl = String.length m in
        let rec go i =
          i + nl <= hl && (String.sub m i nl = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "message %S names the last attempt" m)
        true
        (contains "last attempt: 4 poles");
      Alcotest.(check bool) "error event recorded" true
        (Diag.has_errors (Diag.report d))

(* ---------------- graceful degradation ---------------- *)

let clipper_training =
  {
    Tft_rvf.Pipeline.wave =
      Circuit.Netlist.Sine { offset = 0.3; ampl = 0.5; freq = 1e6; phase = 0.0 };
    t_stop = 1e-6;
    dt = 2.5e-9;
    snapshot_every = 4;
  }

let test_escalation_ladder_shape () =
  let ladder = Tft_rvf.Pipeline.escalation_ladder Rvf.default_config in
  Alcotest.(check int) "five rungs" 5 (List.length ladder);
  (match ladder with
  | ("base", c) :: _ ->
      Alcotest.(check bool) "base rung is the untouched config" true
        (c = Rvf.default_config)
  | _ -> Alcotest.fail "first rung must be base");
  let relaxed = List.assoc "relaxed-min-imag" ladder in
  Alcotest.(check (float 1e-15)) "min_imag relaxed by 4x"
    (Rvf.default_config.Rvf.min_imag_fraction /. 4.0)
    relaxed.Rvf.min_imag_fraction;
  let more = List.assoc "more-start-poles" ladder in
  Alcotest.(check bool) "start poles bumped" true
    (more.Rvf.freq_start > Rvf.default_config.Rvf.freq_start)

let test_try_extract_matches_raising_path () =
  (* acceptance: when the base rung succeeds, the non-raising path must
     hand back bit-for-bit the model of the raising path *)
  let config = Tft_rvf.Pipeline.buffer_config ~snapshots:30 () in
  let netlist = Circuits.Buffer.netlist () in
  let input = Circuits.Buffer.input_name and output = Circuits.Buffer.output in
  let raising = Tft_rvf.Pipeline.extract ~config ~netlist ~input ~output () in
  let outcome, report =
    Tft_rvf.Pipeline.try_extract ~config ~netlist ~input ~output ()
  in
  match outcome with
  | None -> Alcotest.fail "try_extract failed on the buffer example"
  | Some o ->
      Alcotest.(check string) "identical equations"
        (Hammerstein.Hmodel.equations raising.Tft_rvf.Pipeline.model)
        (Hammerstein.Hmodel.equations o.Tft_rvf.Pipeline.model);
      (* the frozen-state transfer surface must agree exactly, not just
         to a tolerance: same config, same arithmetic, same bits *)
      List.iter
        (fun (x, f) ->
          let s = Complex.{ re = 0.0; im = 2.0 *. Float.pi *. f } in
          let a =
            Hammerstein.Hmodel.transfer raising.Tft_rvf.Pipeline.model ~x ~s
          in
          let b = Hammerstein.Hmodel.transfer o.Tft_rvf.Pipeline.model ~x ~s in
          Alcotest.(check bool)
            (Printf.sprintf "transfer at x=%.2f f=%.0e bit-identical" x f)
            true
            (a.Complex.re = b.Complex.re && a.Complex.im = b.Complex.im))
        [ (0.2, 1e4); (0.9, 1e6); (1.4, 1e9) ];
      Alcotest.(check (option string)) "base rung" (Some "base")
        (Diag.find_note report "pipeline.ladder_rung");
      Alcotest.(check bool) "no errors" false (Diag.has_errors report);
      let stages =
        List.map (fun (s : Diag.span) -> s.Diag.stage) report.Diag.spans
      in
      List.iter
        (fun st ->
          Alcotest.(check bool) (Printf.sprintf "span %s present" st) true
            (List.mem st stages))
        [ "pipeline.train"; "pipeline.tft"; "pipeline.fit" ];
      Alcotest.(check bool) "transient telemetry captured" true
        (Diag.counter report "tran.steps" > 0)

let test_try_extract_degenerate_names_stage () =
  (* 400 steps with snapshot_every = 200 yields 3 snapshots — below the
     4-sample floor of the fit, so every ladder rung must fail and the
     report must say which stage gave up *)
  let config =
    Tft_rvf.Pipeline.default_config_for ~f_min:1e4 ~f_max:1e9
      ~training:{ clipper_training with Tft_rvf.Pipeline.snapshot_every = 200 }
      ()
  in
  let outcome, report =
    Tft_rvf.Pipeline.try_extract ~config
      ~netlist:(Circuits.Library.clipper ())
      ~input:"Vin" ~output:Circuits.Library.clipper_output ()
  in
  Alcotest.(check bool) "no model" true (outcome = None);
  Alcotest.(check bool) "report has errors" true (Diag.has_errors report);
  Alcotest.(check int) "every rung retried" 5
    (Diag.counter report "pipeline.fit_retries");
  Alcotest.(check bool) "failure names the fit stage" true
    (List.exists
       (fun (e : Diag.event) ->
         e.Diag.level = Diag.Error && e.Diag.stage = "pipeline.fit")
       report.Diag.events)

let suite =
  [
    Alcotest.test_case "counters and stats" `Quick test_counters_and_stats;
    Alcotest.test_case "notes and events" `Quick test_notes_and_events;
    Alcotest.test_case "span survives raise" `Quick test_span_survives_raise;
    Alcotest.test_case "none is noop" `Quick test_none_is_noop;
    Alcotest.test_case "diag json shape" `Quick test_diag_json_shape_and_escaping;
    Alcotest.test_case "dc solve iteration counter" `Quick
      test_dc_solve_counts_iterations;
    Alcotest.test_case "newton counted per iteration" `Quick
      test_newton_counted_per_iteration;
    Alcotest.test_case "be fallback consistency" `Quick
      test_be_fallback_consistency;
    Alcotest.test_case "adaptive counters agree" `Quick
      test_adaptive_counters_agree;
    Alcotest.test_case "fit_auto failure reason" `Quick
      test_fit_auto_reports_reason;
    Alcotest.test_case "escalation ladder shape" `Quick
      test_escalation_ladder_shape;
    Alcotest.test_case "try_extract parity" `Slow
      test_try_extract_matches_raising_path;
    Alcotest.test_case "try_extract degenerate" `Quick
      test_try_extract_degenerate_names_stage;
  ]
