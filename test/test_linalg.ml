(* Unit and property tests for the dense linear algebra kernels. *)

let check_float = Alcotest.(check (float 1e-9))

let mat_of = Linalg.Mat.of_arrays

let rand_state seed = Random.State.make [| seed; 0x5eed |]

(* a random diagonally-dominant matrix is comfortably invertible *)
let random_dd_matrix st n =
  let a = Linalg.Mat.random st n n in
  for i = 0 to n - 1 do
    Linalg.Mat.update a i i (fun x -> x +. float_of_int n)
  done;
  a

(* ---------------- Vec ---------------- *)

let test_vec_dot () =
  check_float "dot" 32.0 (Linalg.Vec.dot [| 1.0; 2.0; 3.0 |] [| 4.0; 5.0; 6.0 |])

let test_vec_norms () =
  check_float "norm2" 5.0 (Linalg.Vec.norm2 [| 3.0; 4.0 |]);
  check_float "norm_inf" 4.0 (Linalg.Vec.norm_inf [| 3.0; -4.0 |]);
  check_float "dist_inf" 7.0 (Linalg.Vec.dist_inf [| 3.0; -4.0 |] [| 3.0; 3.0 |])

let test_vec_axpy () =
  let y = [| 1.0; 1.0 |] in
  Linalg.Vec.axpy 2.0 [| 1.0; 2.0 |] y;
  check_float "axpy0" 3.0 y.(0);
  check_float "axpy1" 5.0 y.(1)

let test_vec_mismatch () =
  Alcotest.check_raises "dot mismatch" (Invalid_argument "Vec: dimension mismatch")
    (fun () -> ignore (Linalg.Vec.dot [| 1.0 |] [| 1.0; 2.0 |]))

(* ---------------- Mat ---------------- *)

let test_mat_mul_identity () =
  let st = rand_state 1 in
  let a = Linalg.Mat.random st 4 4 in
  let i = Linalg.Mat.identity 4 in
  Alcotest.(check bool)
    "A*I = A" true
    (Linalg.Mat.approx_equal (Linalg.Mat.mul a i) a)

let test_mat_mul_assoc () =
  let st = rand_state 2 in
  let a = Linalg.Mat.random st 3 4 in
  let b = Linalg.Mat.random st 4 5 in
  let c = Linalg.Mat.random st 5 2 in
  let lhs = Linalg.Mat.mul (Linalg.Mat.mul a b) c in
  let rhs = Linalg.Mat.mul a (Linalg.Mat.mul b c) in
  Alcotest.(check bool) "(AB)C = A(BC)" true (Linalg.Mat.approx_equal ~tol:1e-12 lhs rhs)

let test_mat_transpose_involution () =
  let st = rand_state 3 in
  let a = Linalg.Mat.random st 5 3 in
  Alcotest.(check bool)
    "transpose twice" true
    (Linalg.Mat.approx_equal (Linalg.Mat.transpose (Linalg.Mat.transpose a)) a)

let test_mat_mulv_t () =
  let st = rand_state 4 in
  let a = Linalg.Mat.random st 4 3 in
  let x = [| 1.0; -2.0; 0.5; 3.0 |] in
  let expected = Linalg.Mat.mulv (Linalg.Mat.transpose a) x in
  Alcotest.(check bool)
    "mulv_t = (A^T)x" true
    (Linalg.Vec.approx_equal (Linalg.Mat.mulv_t a x) expected)

let test_mat_row_col () =
  let a = mat_of [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check bool) "row" true (Linalg.Vec.approx_equal (Linalg.Mat.row a 1) [| 3.0; 4.0 |]);
  Alcotest.(check bool) "col" true (Linalg.Vec.approx_equal (Linalg.Mat.col a 1) [| 2.0; 4.0 |])

(* ---------------- Lu ---------------- *)

let test_lu_solve_known () =
  let a = mat_of [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Linalg.Lu.solve_system a [| 5.0; 10.0 |] in
  check_float "x0" 1.0 x.(0);
  check_float "x1" 3.0 x.(1)

let test_lu_det () =
  let a = mat_of [| [| 2.0; 0.0 |]; [| 0.0; 3.0 |] |] in
  check_float "det diag" 6.0 (Linalg.Lu.det (Linalg.Lu.factor a));
  let p = mat_of [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  check_float "det permutation" (-1.0) (Linalg.Lu.det (Linalg.Lu.factor p))

let test_lu_singular () =
  let a = mat_of [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.(check bool) "raises Singular" true
    (match Linalg.Lu.factor a with
    | exception Linalg.Lu.Singular _ -> true
    | _ -> false)

let test_lu_inverse () =
  let st = rand_state 5 in
  let a = random_dd_matrix st 6 in
  let inv = Linalg.Lu.inverse a in
  Alcotest.(check bool)
    "A * A^-1 = I" true
    (Linalg.Mat.approx_equal ~tol:1e-10 (Linalg.Mat.mul a inv) (Linalg.Mat.identity 6))

let prop_lu_residual =
  QCheck.Test.make ~count:50 ~name:"lu solves random dd systems"
    QCheck.(pair (int_range 1 12) (int_bound 10000))
    (fun (n, seed) ->
      let st = rand_state seed in
      let a = random_dd_matrix st n in
      let b = Array.init n (fun k -> Random.State.float st 2.0 -. 1.0 +. float_of_int k) in
      let x = Linalg.Lu.solve_system a b in
      Linalg.Vec.dist_inf (Linalg.Mat.mulv a x) b < 1e-8)

(* ---------------- Qr ---------------- *)

let test_qr_r_upper_triangular () =
  let st = rand_state 6 in
  let a = Linalg.Mat.random st 6 4 in
  let r = Linalg.Qr.r (Linalg.Qr.factor a) in
  let ok = ref true in
  for i = 1 to 3 do
    for j = 0 to i - 1 do
      if Float.abs (Linalg.Mat.get r i j) > 1e-14 then ok := false
    done
  done;
  Alcotest.(check bool) "R upper triangular" true !ok

let test_qr_least_squares_exact () =
  (* overdetermined but consistent system *)
  let a = mat_of [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  let x_true = [| 2.0; -1.0 |] in
  let b = Linalg.Mat.mulv a x_true in
  let x = Linalg.Qr.least_squares a b in
  Alcotest.(check bool) "exact recovery" true (Linalg.Vec.approx_equal ~tol:1e-12 x x_true)

let test_qr_vs_normal_equations () =
  let st = rand_state 7 in
  let a = Linalg.Mat.random st 10 4 in
  let b = Array.init 10 (fun _ -> Random.State.float st 2.0 -. 1.0) in
  let x = Linalg.Qr.least_squares a b in
  (* normal equations: A^T A x = A^T b *)
  let ata = Linalg.Mat.mul (Linalg.Mat.transpose a) a in
  let atb = Linalg.Mat.mulv_t a b in
  let x_ne = Linalg.Lu.solve_system ata atb in
  Alcotest.(check bool) "matches normal equations" true
    (Linalg.Vec.approx_equal ~tol:1e-8 x x_ne)

let test_qr_rank_deficient () =
  let a = mat_of [| [| 1.0; 1.0 |]; [| 1.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  Alcotest.(check bool) "raises Rank_deficient" true
    (match Linalg.Qr.least_squares a [| 1.0; 2.0; 3.0 |] with
    | exception Linalg.Qr.Rank_deficient _ -> true
    | _ -> false)

let prop_qr_residual_orthogonal =
  QCheck.Test.make ~count:50 ~name:"qr residual orthogonal to range"
    QCheck.(pair (int_range 2 6) (int_bound 10000))
    (fun (n, seed) ->
      let st = rand_state (seed + 77) in
      let m = n + 4 in
      let a = Linalg.Mat.random st m n in
      let b = Array.init m (fun _ -> Random.State.float st 2.0 -. 1.0) in
      match Linalg.Qr.least_squares a b with
      | exception Linalg.Qr.Rank_deficient _ -> QCheck.assume_fail ()
      | x ->
          let r = Linalg.Vec.sub (Linalg.Mat.mulv a x) b in
          Linalg.Vec.norm_inf (Linalg.Mat.mulv_t a r) < 1e-8)

(* ---------------- Eig ---------------- *)

let sorted_reals eigs =
  let rs = Array.map (fun z -> z.Complex.re) eigs in
  Array.sort Float.compare rs;
  rs

let test_eig_diagonal () =
  let a = mat_of [| [| 3.0; 0.0 |]; [| 0.0; -1.0 |] |] in
  let e = sorted_reals (Linalg.Eig.eigenvalues a) in
  check_float "e0" (-1.0) e.(0);
  check_float "e1" 3.0 e.(1)

let test_eig_rotation () =
  (* [[0,1],[-1,0]] has eigenvalues ±i *)
  let a = mat_of [| [| 0.0; 1.0 |]; [| -1.0; 0.0 |] |] in
  let e = Linalg.Eig.eigenvalues a in
  let ims = Array.map (fun z -> z.Complex.im) e in
  Array.sort Float.compare ims;
  check_float "im0" (-1.0) ims.(0);
  check_float "im1" 1.0 ims.(1);
  Array.iter (fun z -> check_float "re" 0.0 z.Complex.re) e

let test_poly_roots_cubic () =
  (* (x-1)(x-2)(x-3) *)
  let roots = sorted_reals (Linalg.Eig.poly_roots [| -6.0; 11.0; -6.0; 1.0 |]) in
  check_float "r0" 1.0 roots.(0);
  check_float "r1" 2.0 roots.(1);
  check_float "r2" 3.0 roots.(2)

let test_poly_roots_complex () =
  let roots = Linalg.Eig.poly_roots [| 1.0; 0.0; 1.0 |] in
  Array.iter (fun z -> check_float "unit modulus" 1.0 (Complex.norm z)) roots

let test_hessenberg_preserves_eigs () =
  let st = rand_state 8 in
  let a = Linalg.Mat.random st 6 6 in
  let h = Linalg.Eig.hessenberg a in
  (* structurally Hessenberg *)
  let ok = ref true in
  for i = 2 to 5 do
    for j = 0 to i - 2 do
      if Float.abs (Linalg.Mat.get h i j) > 1e-12 then ok := false
    done
  done;
  Alcotest.(check bool) "hessenberg structure" true !ok;
  let tr m =
    let acc = ref 0.0 in
    for i = 0 to 5 do
      acc := !acc +. Linalg.Mat.get m i i
    done;
    !acc
  in
  check_float "similarity preserves trace" (tr a) (tr h)

let prop_eig_trace =
  QCheck.Test.make ~count:40 ~name:"sum of eigenvalues = trace"
    QCheck.(pair (int_range 2 10) (int_bound 10000))
    (fun (n, seed) ->
      let st = rand_state (seed + 13) in
      let a = Linalg.Mat.random st n n in
      let e = Linalg.Eig.eigenvalues a in
      let tr = ref 0.0 in
      for i = 0 to n - 1 do
        tr := !tr +. Linalg.Mat.get a i i
      done;
      let s = Array.fold_left (fun acc z -> acc +. z.Complex.re) 0.0 e in
      let im = Array.fold_left (fun acc z -> acc +. z.Complex.im) 0.0 e in
      Float.abs (s -. !tr) < 1e-6 *. Float.max 1.0 (Float.abs !tr)
      && Float.abs im < 1e-8)

let prop_eig_det =
  QCheck.Test.make ~count:40 ~name:"product of eigenvalues = det"
    QCheck.(pair (int_range 2 8) (int_bound 10000))
    (fun (n, seed) ->
      let st = rand_state (seed + 29) in
      let a = Linalg.Mat.random st n n in
      let e = Linalg.Eig.eigenvalues a in
      let det = Linalg.Lu.det (Linalg.Lu.factor a) in
      let prod = Array.fold_left Complex.mul Complex.one e in
      Float.abs (prod.Complex.re -. det) < 1e-6 *. Float.max 1.0 (Float.abs det)
      && Float.abs prod.Complex.im < 1e-6 *. Float.max 1.0 (Float.abs det))

let prop_poly_roots_reconstruct =
  QCheck.Test.make ~count:30 ~name:"poly_roots finds zeros"
    QCheck.(list_of_size (Gen.int_range 1 5) (float_range (-3.0) 3.0))
    (fun roots ->
      QCheck.assume (roots <> []);
      (* build polynomial from roots, find them again *)
      let coeffs = ref [| 1.0 |] in
      List.iter
        (fun r ->
          let c = !coeffs in
          let n = Array.length c in
          let next = Array.make (n + 1) 0.0 in
          for k = 0 to n - 1 do
            next.(k + 1) <- next.(k + 1) +. c.(k);
            next.(k) <- next.(k) -. (r *. c.(k))
          done;
          coeffs := next)
        roots;
      let found = Linalg.Eig.poly_roots !coeffs in
      (* every true root is close to some found root *)
      List.for_all
        (fun r ->
          Array.exists
            (fun z -> Complex.norm (Complex.sub z { Complex.re = r; im = 0.0 }) < 1e-4)
            found)
        roots)

(* ---------------- Cmat / Clu ---------------- *)

let test_clu_solve () =
  let g = mat_of [| [| 1.0; 0.5 |]; [| 0.25; 2.0 |] |] in
  let c = mat_of [| [| 1e-3; 0.0 |]; [| 0.0; 2e-3 |] |] in
  let s = { Complex.re = 0.0; im = 10.0 } in
  let a = Linalg.Cmat.lincomb Complex.one g s c in
  let b = [| Complex.one; Complex.i |] in
  let x = Linalg.Clu.solve_system a b in
  let back = Linalg.Cmat.mulv a x in
  Array.iteri
    (fun k z ->
      Alcotest.(check bool)
        "residual small" true
        (Complex.norm (Complex.sub z b.(k)) < 1e-12))
    back

let test_cmat_mul_identity () =
  let a =
    Linalg.Cmat.init 3 3 (fun i j ->
        { Complex.re = float_of_int ((i * 3) + j); im = float_of_int (i - j) })
  in
  let i3 = Linalg.Cmat.identity 3 in
  let prod = Linalg.Cmat.mul a i3 in
  let ok = ref true in
  for i = 0 to 2 do
    for j = 0 to 2 do
      if
        Complex.norm (Complex.sub (Linalg.Cmat.get prod i j) (Linalg.Cmat.get a i j))
        > 1e-14
      then ok := false
    done
  done;
  Alcotest.(check bool) "A*I = A (complex)" true !ok

let prop_clu_residual =
  QCheck.Test.make ~count:30 ~name:"complex lu solves random pencils"
    QCheck.(pair (int_range 1 8) (int_bound 10000))
    (fun (n, seed) ->
      let st = rand_state (seed + 41) in
      let g = random_dd_matrix st n in
      let c = Linalg.Mat.random st n n in
      let s = { Complex.re = 0.0; im = Random.State.float st 100.0 } in
      let a = Linalg.Cmat.lincomb Complex.one g s c in
      let b =
        Array.init n (fun _ ->
            {
              Complex.re = Random.State.float st 2.0 -. 1.0;
              im = Random.State.float st 2.0 -. 1.0;
            })
      in
      match Linalg.Clu.solve_system a b with
      | exception Linalg.Clu.Singular _ -> QCheck.assume_fail ()
      | x ->
          let back = Linalg.Cmat.mulv a x in
          Array.for_all2
            (fun z bz -> Complex.norm (Complex.sub z bz) < 1e-7)
            back b)

(* ---------------- workspace kernels ---------------- *)

let random_cpencil st n =
  let g = random_dd_matrix st n in
  let c = Linalg.Mat.random st n n in
  let s = { Complex.re = 0.0; im = Random.State.float st 100.0 } in
  Linalg.Cmat.lincomb Complex.one g s c

(* the [_into] kernels promise bit-identical results to the allocating
   wrappers, so these compare with exact float equality *)
let prop_lu_factor_into_agrees =
  QCheck.Test.make ~count:50 ~name:"lu factor_into/solve_into = factor/solve"
    QCheck.(pair (int_range 1 10) (int_bound 10000))
    (fun (n, seed) ->
      let st = rand_state (seed + 57) in
      let a = random_dd_matrix st n in
      let b = Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0) in
      let x_ref = Linalg.Lu.solve_system a b in
      let ws = Linalg.Lu.workspace n in
      (* reuse the workspace twice: a stale factorization must not leak *)
      Linalg.Lu.factor_into ws (random_dd_matrix st n);
      Linalg.Lu.factor_into ws a;
      let x = Array.make n 0.0 in
      Linalg.Lu.solve_into ws b x;
      x = x_ref)

let prop_clu_factor_into_agrees =
  QCheck.Test.make ~count:50 ~name:"clu factor_into/solve_into = factor/solve"
    QCheck.(pair (int_range 1 8) (int_bound 10000))
    (fun (n, seed) ->
      let st = rand_state (seed + 91) in
      let a = random_cpencil st n in
      let b =
        Array.init n (fun _ ->
            {
              Complex.re = Random.State.float st 2.0 -. 1.0;
              im = Random.State.float st 2.0 -. 1.0;
            })
      in
      let x_ref = Linalg.Clu.solve_system a b in
      let ws = Linalg.Clu.workspace n in
      Linalg.Clu.factor_into ws (random_cpencil st n);
      Linalg.Clu.factor_into ws a;
      let x = Array.make n Complex.zero in
      Linalg.Clu.solve_into ws b x;
      x = x_ref)

let prop_lincomb_into_agrees =
  QCheck.Test.make ~count:50 ~name:"cmat lincomb_into = lincomb"
    QCheck.(pair (int_range 1 8) (int_bound 10000))
    (fun (n, seed) ->
      let st = rand_state (seed + 23) in
      let g = Linalg.Mat.random st n n and c = Linalg.Mat.random st n n in
      let s = { Complex.re = Random.State.float st 2.0; im = Random.State.float st 100.0 } in
      let expected = Linalg.Cmat.lincomb Complex.one g s c in
      let dst = Linalg.Cmat.create n n in
      Linalg.Cmat.lincomb_into dst Complex.one g s c;
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Linalg.Cmat.get dst i j <> Linalg.Cmat.get expected i j then ok := false
        done
      done;
      !ok)

let test_solve_into_rejects_aliasing () =
  let a = mat_of [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let f = Linalg.Lu.factor a in
  let b = [| 5.0; 10.0 |] in
  Alcotest.check_raises "aliasing rejected"
    (Invalid_argument "Lu.solve_into: b and x must not alias") (fun () ->
      Linalg.Lu.solve_into f b b)

let test_workspace_size_mismatch () =
  let ws = Linalg.Lu.workspace 3 in
  Alcotest.(check bool) "size mismatch rejected" true
    (match Linalg.Lu.factor_into ws (Linalg.Mat.identity 2) with
    | exception Invalid_argument _ -> true
    | () -> false)

(* ---------------- Qr workspace API: bitwise parity ---------------- *)

(* the in-place kernels promise the very same arithmetic sequence as the
   copying entry points, so these comparisons are on raw float bits *)
let bits_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let check_bits_arr name xs ys =
  Alcotest.(check int) (name ^ " length") (Array.length xs) (Array.length ys);
  Array.iteri
    (fun i x ->
      Alcotest.(check bool)
        (Printf.sprintf "%s.(%d) %h = %h" name i x ys.(i))
        true (bits_eq x ys.(i)))
    xs

let check_bits_mat name a b =
  Alcotest.(check int) (name ^ " rows") (Linalg.Mat.rows a) (Linalg.Mat.rows b);
  Alcotest.(check int) (name ^ " cols") (Linalg.Mat.cols a) (Linalg.Mat.cols b);
  for i = 0 to Linalg.Mat.rows a - 1 do
    check_bits_arr
      (Printf.sprintf "%s row %d" name i)
      (Linalg.Mat.row a i) (Linalg.Mat.row b i)
  done

(* copy [a] into the workspace's cached matrix, as the fast relocation
   kernel does before factoring in place *)
let ws_copy ws a =
  let m = Linalg.Mat.rows a and n = Linalg.Mat.cols a in
  let w = Linalg.Qr.ws_matrix ws ~rows:m ~cols:n in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      Linalg.Mat.set w i j (Linalg.Mat.get a i j)
    done
  done;
  w

let test_qr_factor_into_bitwise () =
  let st = rand_state 31 in
  let ws = Linalg.Qr.workspace () in
  (* reusing one workspace across shapes is the intended pattern *)
  List.iter
    (fun (m, n) ->
      let a = Linalg.Mat.random st m n in
      let b = Array.init m (fun _ -> Random.State.float st 2.0 -. 1.0) in
      let qr = Linalg.Qr.factor a in
      let t = Linalg.Qr.factor_into ws (ws_copy ws a) in
      check_bits_mat (Printf.sprintf "R %dx%d" m n) (Linalg.Qr.r qr)
        (Linalg.Qr.r t);
      let qtb = Linalg.Qr.apply_qt qr b in
      let b' = Array.copy b in
      Linalg.Qr.apply_qt_into t b';
      check_bits_arr (Printf.sprintf "Qt b %dx%d" m n) qtb b')
    [ (6, 3); (9, 5); (4, 4) ]

let test_qr_apply_qt_mat_bitwise () =
  let st = rand_state 32 in
  let a = Linalg.Mat.random st 8 4 in
  let bmat = Linalg.Mat.random st 8 3 in
  let qr = Linalg.Qr.factor a in
  let ws = Linalg.Qr.workspace () in
  let t = Linalg.Qr.factor_into ws (ws_copy ws a) in
  let expect = Array.init 3 (fun j -> Linalg.Qr.apply_qt qr (Linalg.Mat.col bmat j)) in
  Linalg.Qr.apply_qt_mat t bmat;
  for j = 0 to 2 do
    check_bits_arr (Printf.sprintf "QtB col %d" j) expect.(j) (Linalg.Mat.col bmat j)
  done

let test_qr_block_extraction_bitwise () =
  let st = rand_state 33 in
  let m = 10 and n1 = 3 and n2 = 4 in
  let a = Linalg.Mat.random st m (n1 + n2) in
  let b = Array.init m (fun _ -> Random.State.float st 2.0 -. 1.0) in
  let qr = Linalg.Qr.factor a in
  let r = Linalg.Qr.r qr in
  let qtb = Linalg.Qr.apply_qt qr b in
  let ws = Linalg.Qr.workspace () in
  let t = Linalg.Qr.factor_into ws (ws_copy ws a) in
  let dst = Linalg.Mat.init (2 * n2) n2 (fun _ _ -> 7.0) in
  Linalg.Qr.r22_block t ~split:n1 dst n2;
  for k = 0 to n2 - 1 do
    for c = 0 to n2 - 1 do
      Alcotest.(check bool)
        (Printf.sprintf "R22 (%d,%d)" k c)
        true
        (bits_eq (Linalg.Mat.get dst (n2 + k) c) (Linalg.Mat.get r (n1 + k) (n1 + c)))
    done
  done;
  (* rows above the destination offset untouched *)
  Alcotest.(check bool) "dst offset respected" true
    (Linalg.Mat.get dst 0 0 = 7.0);
  let big = Array.make (2 * n2) 7.0 in
  Linalg.Qr.apply_qt_block t ~split:n1 b big n2;
  check_bits_arr "Q2t b" (Array.sub qtb n1 n2) (Array.sub big n2 n2);
  Alcotest.(check bool) "rhs offset respected" true (big.(0) = 7.0)

let test_qr_least_squares_into_bitwise () =
  let st = rand_state 34 in
  let a = Linalg.Mat.random st 12 5 in
  let b = Array.init 12 (fun _ -> Random.State.float st 2.0 -. 1.0) in
  let x = Linalg.Qr.least_squares a b in
  let ws = Linalg.Qr.workspace () in
  let x' = Linalg.Qr.least_squares_into ws (ws_copy ws a) (Array.copy b) in
  check_bits_arr "solution" x x'

(* the shared-Q1 two-stage factorization of the uniform-weighting fast
   path: factor the common left block once, push its reflectors onto the
   right block, then QR only the tail rows. Reflector k of a Householder
   factorization depends only on columns <= k, so the staged R22 must be
   bit-identical to the one-shot factorization's trailing block. *)
let test_qr_two_stage_shared_q1_bitwise () =
  let st = rand_state 35 in
  let m = 11 and n1 = 4 and n2 = 3 in
  let a1 = Linalg.Mat.random st m n1 in
  let a2 = Linalg.Mat.random st m n2 in
  let full =
    Linalg.Mat.init m (n1 + n2) (fun i j ->
        if j < n1 then Linalg.Mat.get a1 i j else Linalg.Mat.get a2 i (j - n1))
  in
  let qr_full = Linalg.Qr.factor full in
  let r_full = Linalg.Qr.r qr_full in
  let ws1 = Linalg.Qr.workspace () and ws2 = Linalg.Qr.workspace () in
  let t1 = Linalg.Qr.factor_into ws1 (ws_copy ws1 a1) in
  let a2' = Linalg.Mat.init m n2 (fun i j -> Linalg.Mat.get a2 i j) in
  Linalg.Qr.apply_qt_mat t1 a2';
  let tail = Linalg.Mat.init (m - n1) n2 (fun i j -> Linalg.Mat.get a2' (n1 + i) j) in
  let t2 = Linalg.Qr.factor_into ws2 (ws_copy ws2 tail) in
  let dst = Linalg.Mat.create n2 n2 in
  Linalg.Qr.r22_block t2 ~split:0 dst 0;
  for k = 0 to n2 - 1 do
    for c = 0 to n2 - 1 do
      Alcotest.(check bool)
        (Printf.sprintf "staged R22 (%d,%d)" k c)
        true
        (bits_eq (Linalg.Mat.get dst k c) (Linalg.Mat.get r_full (n1 + k) (n1 + c)))
    done
  done

(* ---------------- Cx ---------------- *)

let test_cx_ops () =
  let z = Linalg.Cx.make 3.0 4.0 in
  check_float "norm" 5.0 (Linalg.Cx.norm z);
  check_float "norm2" 25.0 (Linalg.Cx.norm2 z);
  let w = Linalg.Cx.(z *: conj z) in
  check_float "z * conj z" 25.0 w.Complex.re;
  check_float "imag zero" 0.0 w.Complex.im;
  Alcotest.(check bool) "inv" true
    (Linalg.Cx.approx_equal Linalg.Cx.(inv (inv z)) z)

let qsuite = [ prop_lu_residual; prop_qr_residual_orthogonal; prop_eig_trace;
               prop_eig_det; prop_poly_roots_reconstruct; prop_clu_residual;
               prop_lu_factor_into_agrees; prop_clu_factor_into_agrees;
               prop_lincomb_into_agrees ]

let suite =
  [
    Alcotest.test_case "vec dot" `Quick test_vec_dot;
    Alcotest.test_case "vec norms" `Quick test_vec_norms;
    Alcotest.test_case "vec axpy" `Quick test_vec_axpy;
    Alcotest.test_case "vec mismatch" `Quick test_vec_mismatch;
    Alcotest.test_case "mat mul identity" `Quick test_mat_mul_identity;
    Alcotest.test_case "mat mul assoc" `Quick test_mat_mul_assoc;
    Alcotest.test_case "mat transpose involution" `Quick test_mat_transpose_involution;
    Alcotest.test_case "mat mulv_t" `Quick test_mat_mulv_t;
    Alcotest.test_case "mat row/col" `Quick test_mat_row_col;
    Alcotest.test_case "lu solve known" `Quick test_lu_solve_known;
    Alcotest.test_case "lu det" `Quick test_lu_det;
    Alcotest.test_case "lu singular" `Quick test_lu_singular;
    Alcotest.test_case "lu inverse" `Quick test_lu_inverse;
    Alcotest.test_case "qr upper triangular" `Quick test_qr_r_upper_triangular;
    Alcotest.test_case "qr exact recovery" `Quick test_qr_least_squares_exact;
    Alcotest.test_case "qr vs normal equations" `Quick test_qr_vs_normal_equations;
    Alcotest.test_case "qr rank deficient" `Quick test_qr_rank_deficient;
    Alcotest.test_case "eig diagonal" `Quick test_eig_diagonal;
    Alcotest.test_case "eig rotation" `Quick test_eig_rotation;
    Alcotest.test_case "poly roots cubic" `Quick test_poly_roots_cubic;
    Alcotest.test_case "poly roots complex" `Quick test_poly_roots_complex;
    Alcotest.test_case "hessenberg structure" `Quick test_hessenberg_preserves_eigs;
    Alcotest.test_case "clu pencil solve" `Quick test_clu_solve;
    Alcotest.test_case "cmat identity" `Quick test_cmat_mul_identity;
    Alcotest.test_case "cx ops" `Quick test_cx_ops;
    Alcotest.test_case "solve_into rejects aliasing" `Quick
      test_solve_into_rejects_aliasing;
    Alcotest.test_case "workspace size mismatch" `Quick test_workspace_size_mismatch;
    Alcotest.test_case "qr factor_into bitwise" `Quick test_qr_factor_into_bitwise;
    Alcotest.test_case "qr apply_qt_mat bitwise" `Quick test_qr_apply_qt_mat_bitwise;
    Alcotest.test_case "qr block extraction bitwise" `Quick
      test_qr_block_extraction_bitwise;
    Alcotest.test_case "qr least_squares_into bitwise" `Quick
      test_qr_least_squares_into_bitwise;
    Alcotest.test_case "qr two-stage shared Q1 bitwise" `Quick
      test_qr_two_stage_shared_q1_bitwise;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
