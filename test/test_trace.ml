(* Tests for the hierarchical tracer and the metrics registry: span
   nesting and argument capture, race-free merging of worker-domain
   buffers under the Exec pool, non-negative self times, a Chrome
   trace-event JSON round-trip through Minijson, histogram bucket
   invariants — and the load-bearing guarantee that threading a tracer
   through the full extraction pipeline leaves the model bit-for-bit
   identical to the untraced run. *)

let spans_named name spans =
  List.filter (fun (s : Trace.span) -> s.Trace.name = name) spans

(* ---------------- span recording ---------------- *)

let test_nesting_and_args () =
  let tr = Trace.create () in
  let buf = Some (Trace.main tr) in
  Alcotest.(check int) "no open span yet" (-1) (Trace.current buf);
  let r =
    Trace.span buf ~args:[ ("k", Trace.Int 3) ] "outer" (fun () ->
        Trace.span buf "inner" (fun () -> ());
        Trace.add_args buf [ ("late", Trace.Bool true) ];
        41 + 1)
  in
  Alcotest.(check int) "span returns f's value" 42 r;
  let spans = Trace.spans tr in
  Alcotest.(check int) "two spans" 2 (List.length spans);
  let outer = List.hd (spans_named "outer" spans) in
  let inner = List.hd (spans_named "inner" spans) in
  Alcotest.(check int) "outer is a root" (-1) outer.Trace.parent;
  Alcotest.(check int) "inner nests under outer" outer.Trace.id
    inner.Trace.parent;
  Alcotest.(check bool) "same track" true
    (outer.Trace.track = inner.Trace.track);
  Alcotest.(check bool) "durations non-negative" true
    (outer.Trace.dur >= 0.0 && inner.Trace.dur >= 0.0);
  Alcotest.(check bool) "inner inside outer" true
    (inner.Trace.t_start >= outer.Trace.t_start
    && inner.Trace.t_start +. inner.Trace.dur
       <= outer.Trace.t_start +. outer.Trace.dur);
  Alcotest.(check bool) "static arg captured" true
    (List.assoc_opt "k" outer.Trace.args = Some (Trace.Int 3));
  Alcotest.(check bool) "late arg captured" true
    (List.assoc_opt "late" outer.Trace.args = Some (Trace.Bool true))

let test_none_is_noop () =
  Alcotest.(check int) "span still runs f" 7
    (Trace.span None "x" (fun () -> 7));
  Alcotest.(check int) "current of None" (-1) (Trace.current None);
  Trace.add_args None [ ("k", Trace.Int 1) ]

let test_span_survives_raise () =
  let tr = Trace.create () in
  let buf = Some (Trace.main tr) in
  (try Trace.span buf "bad" (fun () -> failwith "x") with Failure _ -> ());
  Trace.span buf "good" (fun () -> ());
  let spans = Trace.spans tr in
  Alcotest.(check int) "both spans recorded" 2 (List.length spans);
  let bad = List.hd (spans_named "bad" spans) in
  Alcotest.(check bool) "raising span closed" true (bad.Trace.dur >= 0.0);
  (* the stack unwound: "good" is a sibling, not a child of "bad" *)
  let good = List.hd (spans_named "good" spans) in
  Alcotest.(check int) "stack unwound on raise" (-1) good.Trace.parent

(* ---------------- worker-domain merging ---------------- *)

let test_worker_spans_merge_race_free () =
  (* many traced pool sweeps in a row: every chunk span must survive the
     merge with a unique id and a parent link to the submitting span *)
  let rounds = 25 and n = 40 in
  let tr = Trace.create () in
  let buf = Trace.main tr in
  Exec.with_pool ~domains:3 (fun pool ->
      for round = 1 to rounds do
        let a =
          Trace.span (Some buf) "iter" (fun () ->
              Exec.parallel_init ~pool ~trace:buf ~label:"t" n (fun i ->
                  (round * i) + i))
        in
        Alcotest.(check int) "results intact" ((round * (n - 1)) + n - 1)
          a.(n - 1)
      done);
  let spans = Trace.spans tr in
  let ids = List.map (fun (s : Trace.span) -> s.Trace.id) spans in
  Alcotest.(check int) "ids unique after merge"
    (List.length ids)
    (List.length (List.sort_uniq compare ids));
  let iters = spans_named "iter" spans in
  Alcotest.(check int) "every round's span merged" rounds (List.length iters);
  let chunks = spans_named "t.chunk" spans in
  Alcotest.(check bool)
    (Printf.sprintf "%d chunk spans (>= one per round)" (List.length chunks))
    true
    (List.length chunks >= rounds);
  let tbl = Hashtbl.create 256 in
  List.iter (fun (s : Trace.span) -> Hashtbl.replace tbl s.Trace.id s) spans;
  List.iter
    (fun (c : Trace.span) ->
      match Hashtbl.find_opt tbl c.Trace.parent with
      | Some (p : Trace.span) ->
          Alcotest.(check string) "chunk hangs off its submitter" "iter"
            p.Trace.name
      | None -> Alcotest.fail "chunk span has a dangling parent")
    chunks;
  let tracks =
    List.sort_uniq compare (List.map (fun (s : Trace.span) -> s.Trace.track) chunks)
  in
  Alcotest.(check bool)
    (Printf.sprintf "chunks ran on %d tracks (want >= 2)" (List.length tracks))
    true
    (List.length tracks >= 2)

let test_traced_pool_propagates_exception () =
  Exec.with_pool ~domains:2 (fun pool ->
      let tr = Trace.create () in
      let buf = Trace.main tr in
      (try
         ignore
           (Trace.span (Some buf) "iter" (fun () ->
                Exec.parallel_init ~pool ~trace:buf ~label:"boom" 16 (fun i ->
                    if i = 7 then failwith "kaboom" else i)));
         Alcotest.fail "expected the chunk's exception"
       with Failure m -> Alcotest.(check string) "original exception" "kaboom" m);
      let spans = Trace.spans tr in
      Alcotest.(check bool) "chunk spans recorded despite the raise" true
        (spans_named "boom.chunk" spans <> []);
      Alcotest.(check bool) "submitting span closed" true
        (List.for_all
           (fun (s : Trace.span) -> s.Trace.dur >= 0.0)
           (spans_named "iter" spans)))

let test_aggregate_self_time_non_negative () =
  let tr = Trace.create () in
  let buf = Trace.main tr in
  Exec.with_pool ~domains:2 (fun pool ->
      Trace.span (Some buf) "outer" (fun () ->
          Trace.span (Some buf) "mid" (fun () ->
              ignore
                (Exec.parallel_init ~pool ~trace:buf ~label:"w" 8 (fun i -> i)));
          Trace.span (Some buf) "mid" (fun () -> ())));
  let aggs = Trace.aggregate tr in
  Alcotest.(check bool) "aggregate non-empty" true (aggs <> []);
  List.iter
    (fun (a : Trace.agg) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: 0 <= self <= total" a.Trace.agg_name)
        true
        (a.Trace.agg_self >= 0.0 && a.Trace.agg_self <= a.Trace.agg_total))
    aggs;
  let mid = List.find (fun (a : Trace.agg) -> a.Trace.agg_name = "mid") aggs in
  Alcotest.(check int) "same-name spans pooled" 2 mid.Trace.agg_count

(* ---------------- Chrome JSON round-trip ---------------- *)

let test_chrome_json_roundtrip () =
  let tr = Trace.create () in
  let buf = Trace.main tr in
  Exec.with_pool ~domains:2 (fun pool ->
      Trace.span (Some buf) ~args:[ ("k", Trace.Int 1) ] "outer" (fun () ->
          Trace.span (Some buf) "inner" (fun () -> ());
          ignore (Exec.parallel_init ~pool ~trace:buf ~label:"w" 12 (fun i -> i))));
  let root = Minijson.parse (Trace.chrome_json tr) in
  Alcotest.(check (option (float 0.0))) "schema_version" (Some 1.0)
    (Minijson.num_field root "schema_version");
  let events = Option.value ~default:[] (Minijson.arr_field root "traceEvents") in
  let xs = List.filter (fun e -> Minijson.str_field e "ph" = Some "X") events in
  let ms = List.filter (fun e -> Minijson.str_field e "ph" = Some "M") events in
  Alcotest.(check int) "one X event per span" (List.length (Trace.spans tr))
    (List.length xs);
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let args = Option.value ~default:Minijson.Null (Minijson.field e "args") in
      match Minijson.num_field args "id" with
      | Some id -> Hashtbl.replace tbl (int_of_float id) e
      | None -> Alcotest.fail "X event without args.id")
    xs;
  List.iter
    (fun e ->
      Alcotest.(check bool) "ts/dur/tid/name present" true
        (Minijson.num_field e "ts" <> None
        && Minijson.num_field e "dur" <> None
        && Minijson.num_field e "tid" <> None
        && Minijson.str_field e "name" <> None);
      let args = Option.value ~default:Minijson.Null (Minijson.field e "args") in
      match Minijson.num_field args "parent" with
      | None -> Alcotest.fail "X event without args.parent"
      | Some p ->
          let p = int_of_float p in
          Alcotest.(check bool) "parent resolves or is a root" true
            (p = -1 || Hashtbl.mem tbl p))
    xs;
  (* the user arg survived the round-trip on the outer span *)
  let outer =
    List.find (fun e -> Minijson.str_field e "name" = Some "outer") xs
  in
  let args = Option.value ~default:Minijson.Null (Minijson.field outer "args") in
  Alcotest.(check (option (float 0.0))) "user arg k" (Some 1.0)
    (Minijson.num_field args "k");
  (* every track used by an X event carries thread_name metadata *)
  let x_tids =
    List.sort_uniq compare
      (List.filter_map (fun e -> Minijson.num_field e "tid") xs)
  in
  let named_tids =
    List.filter_map
      (fun e ->
        if Minijson.str_field e "name" = Some "thread_name" then
          Minijson.num_field e "tid"
        else None)
      ms
  in
  List.iter
    (fun t ->
      Alcotest.(check bool) "track has thread_name metadata" true
        (List.mem t named_tids))
    x_tids

(* ---------------- metrics registry ---------------- *)

let test_metrics_counters_and_gauges () =
  let m = Metrics.create () in
  let mm = Some m in
  Metrics.incr mm "c";
  Metrics.add mm "c" 4;
  Metrics.incr mm "d";
  Metrics.gauge mm "g" 2.5;
  Metrics.gauge mm "g" 3.5;
  let s = Metrics.snapshot m in
  Alcotest.(check (list (pair string int))) "counters, first-seen order"
    [ ("c", 5); ("d", 1) ] s.Metrics.counters;
  Alcotest.(check (list (pair string (float 0.0)))) "latest gauge wins"
    [ ("g", 3.5) ] s.Metrics.gauges;
  (* None is a no-op everywhere *)
  Metrics.incr None "c";
  Metrics.observe None "h" 1.0;
  Metrics.gauge None "g" 9.9;
  Alcotest.(check (float 0.0)) "now_if None reads no clock" 0.0
    (Metrics.now_if None)

let test_metrics_histogram_invariants () =
  let m = Metrics.create () in
  let mm = Some m in
  List.iter (Metrics.observe mm "h") [ 1.0; 9.0; 120.0; 0.0; -3.0 ];
  Metrics.observe mm "weird" Float.nan;
  let s = Metrics.snapshot m in
  let h =
    List.find (fun h -> h.Metrics.hist_name = "h") s.Metrics.histograms
  in
  Alcotest.(check int) "count" 5 h.Metrics.count;
  Alcotest.(check (float 1e-12)) "sum" 127.0 h.Metrics.sum;
  Alcotest.(check (float 1e-12)) "min" (-3.0) h.Metrics.hist_min;
  Alcotest.(check (float 1e-12)) "max" 120.0 h.Metrics.hist_max;
  Alcotest.(check (float 1e-12)) "mean" 25.4 (Metrics.hist_mean h);
  let counts = List.map (fun b -> b.Metrics.bucket_count) h.Metrics.buckets in
  Alcotest.(check int) "bucket counts sum to count" h.Metrics.count
    (List.fold_left ( + ) 0 counts);
  let les = List.map (fun b -> b.Metrics.le) h.Metrics.buckets in
  let rec ascending = function
    | a :: (b :: _ as rest) -> a < b && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "bucket bounds strictly ascending" true (ascending les);
  (match h.Metrics.buckets with
  | first :: _ ->
      Alcotest.(check (float 0.0)) "underflow bucket bound" 0.0
        first.Metrics.le;
      Alcotest.(check int) "non-positive values underflow" 2
        first.Metrics.bucket_count
  | [] -> Alcotest.fail "no buckets");
  (* each finite positive value sits in the bucket whose bound covers it *)
  List.iter
    (fun v ->
      let covering = List.find (fun le -> v <= le) les in
      Alcotest.(check bool)
        (Printf.sprintf "%g within a quarter-decade of its bound" v)
        true
        (covering < v *. Float.pow 10.0 0.25 +. 1e-9))
    [ 1.0; 9.0; 120.0 ];
  let w =
    List.find (fun h -> h.Metrics.hist_name = "weird") s.Metrics.histograms
  in
  (match w.Metrics.buckets with
  | [ b ] ->
      Alcotest.(check (float 0.0)) "nan underflows" 0.0 b.Metrics.le;
      Alcotest.(check int) "nan counted" 1 b.Metrics.bucket_count
  | _ -> Alcotest.fail "nan must land in exactly the underflow bucket");
  (* the JSON document parses and carries the schema version *)
  let root = Minijson.parse (Metrics.to_json s) in
  Alcotest.(check (option (float 0.0))) "metrics json schema" (Some 1.0)
    (Minijson.num_field root "schema_version");
  Alcotest.(check bool) "histograms serialized" true
    (Minijson.arr_field root "histograms" <> None)

let test_metrics_from_worker_domains () =
  let m = Metrics.create () in
  Exec.with_pool ~domains:4 (fun pool ->
      ignore
        (Exec.parallel_init ~pool ~metrics:m ~label:"w" 64 (fun i ->
             Metrics.incr (Some m) "w.calls";
             Metrics.observe (Some m) "w.values" (float_of_int (i + 1));
             i)));
  let s = Metrics.snapshot m in
  Alcotest.(check (option int)) "no increment lost" (Some 64)
    (List.assoc_opt "w.calls" s.Metrics.counters);
  let h =
    List.find (fun h -> h.Metrics.hist_name = "w.values") s.Metrics.histograms
  in
  Alcotest.(check int) "every observation kept" 64 h.Metrics.count;
  Alcotest.(check (float 1e-9)) "sum exact" 2080.0 h.Metrics.sum;
  (* the pool's own instrumentation rode along *)
  Alcotest.(check bool) "chunk run-time histogram present" true
    (List.exists
       (fun h -> h.Metrics.hist_name = "w.chunk_run_ns")
       s.Metrics.histograms)

(* ---------------- pipeline parity ---------------- *)

let test_traced_extraction_bit_identical () =
  (* acceptance: tracing must observe, never perturb — the traced and
     untraced extractions of the same config share every bit *)
  let config = Tft_rvf.Pipeline.buffer_config ~snapshots:30 () in
  let netlist = Circuits.Buffer.netlist () in
  let input = Circuits.Buffer.input_name and output = Circuits.Buffer.output in
  let plain = Tft_rvf.Pipeline.extract ~config ~netlist ~input ~output () in
  let tr = Trace.create () in
  let m = Metrics.create () in
  let traced =
    Tft_rvf.Pipeline.extract ~trace:(Trace.main tr) ~metrics:m ~config ~netlist
      ~input ~output ()
  in
  Alcotest.(check string) "identical equations"
    (Hammerstein.Hmodel.equations plain.Tft_rvf.Pipeline.model)
    (Hammerstein.Hmodel.equations traced.Tft_rvf.Pipeline.model);
  List.iter
    (fun (x, f) ->
      let s = Complex.{ re = 0.0; im = 2.0 *. Float.pi *. f } in
      let a = Hammerstein.Hmodel.transfer plain.Tft_rvf.Pipeline.model ~x ~s in
      let b = Hammerstein.Hmodel.transfer traced.Tft_rvf.Pipeline.model ~x ~s in
      Alcotest.(check bool)
        (Printf.sprintf "transfer at x=%.2f f=%.0e bit-identical" x f)
        true
        (a.Complex.re = b.Complex.re && a.Complex.im = b.Complex.im))
    [ (0.2, 1e4); (0.9, 1e6); (1.4, 1e9) ];
  (* and the trace really observed the run, deep into every layer *)
  let names =
    List.sort_uniq compare
      (List.map (fun (s : Trace.span) -> s.Trace.name) (Trace.spans tr))
  in
  List.iter
    (fun n ->
      Alcotest.(check bool) (Printf.sprintf "span %s recorded" n) true
        (List.mem n names))
    [ "pipeline.train"; "pipeline.tft"; "pipeline.fit"; "tran.step";
      "vf.relocate" ];
  let s = Metrics.snapshot m in
  Alcotest.(check bool) "newton iteration counter flowed" true
    (match List.assoc_opt "tran.newton_iterations" s.Metrics.counters with
    | Some n -> n > 0
    | None -> false)

let suite =
  [
    Alcotest.test_case "nesting and args" `Quick test_nesting_and_args;
    Alcotest.test_case "none is noop" `Quick test_none_is_noop;
    Alcotest.test_case "span survives raise" `Quick test_span_survives_raise;
    Alcotest.test_case "worker spans merge race-free" `Quick
      test_worker_spans_merge_race_free;
    Alcotest.test_case "traced pool propagates exception" `Quick
      test_traced_pool_propagates_exception;
    Alcotest.test_case "self time non-negative" `Quick
      test_aggregate_self_time_non_negative;
    Alcotest.test_case "chrome json round-trip" `Quick
      test_chrome_json_roundtrip;
    Alcotest.test_case "metrics counters and gauges" `Quick
      test_metrics_counters_and_gauges;
    Alcotest.test_case "metrics histogram invariants" `Quick
      test_metrics_histogram_invariants;
    Alcotest.test_case "metrics from worker domains" `Quick
      test_metrics_from_worker_domains;
    Alcotest.test_case "traced extraction parity" `Slow
      test_traced_extraction_bit_identical;
  ]
