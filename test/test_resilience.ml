(* Deadline supervisor, checkpoint store and retry ladder:

   - cancellation token semantics (cancel, budgets, nesting, zero-cost
     None path measured against the Clock.reads counter)
   - checkpoint round trips, staleness, torn-file rejection and the
     chaos kill hook
   - per-rung deadline coverage: a hang parked (via a scoped fault
     plan) at each escalation rung must surface as a typed
     Deadline_exceeded whose stage carries the rung label, and
     try_extract must never return a model after a tripped deadline
   - retry-with-backoff: a transient rung failure retries the rung
     without consuming an escalation step
   - pool exception safety: a poisoned fan-out leaves the pool usable *)

let with_clean_faults f =
  Fun.protect ~finally:(fun () -> ignore (Fault.disarm ())) f

(* --- cancellation token ---------------------------------------------- *)

let test_cancel_basics () =
  let t = Cancel.create () in
  Cancel.check (Some t) ~site:"test";
  Alcotest.(check bool) "not requested" false (Cancel.cancel_requested (Some t));
  Cancel.cancel t;
  Alcotest.(check bool) "requested" true (Cancel.cancel_requested (Some t));
  (match Cancel.check (Some t) ~site:"test.site" with
  | exception Cancel.Cancelled { site } ->
      Alcotest.(check string) "site recorded" "test.site" site
  | () -> Alcotest.fail "check did not raise after cancel");
  Cancel.check None ~site:"ignored"

let test_budget_trips () =
  let t = Cancel.create () in
  (match
     Cancel.with_budget (Some t) ~stage:"outer" ~seconds:60.0 (fun () ->
         Cancel.with_budget (Some t) ~stage:"inner" ~seconds:0.0 (fun () ->
             Cancel.check (Some t) ~site:"probe"))
   with
  | exception Cancel.Deadline_exceeded { site; stage; budget_seconds; _ } ->
      Alcotest.(check string) "innermost stage" "inner" stage;
      Alcotest.(check string) "probe site" "probe" site;
      Alcotest.(check (float 0.0)) "budget" 0.0 budget_seconds
  | () -> Alcotest.fail "nested zero budget did not trip");
  (* the scope must be popped: the token is reusable afterwards *)
  Cancel.check (Some t) ~site:"after";
  Alcotest.(check bool) "no deadline left" true
    (Cancel.remaining (Some t) = infinity)

let test_no_token_zero_clock_reads () =
  let t = Cancel.create () in
  (* no deadline armed anywhere: probes are an atomic load, never a
     clock read — on both the None and Some paths *)
  let r0 = Clock.reads () in
  for _ = 1 to 1000 do
    Cancel.check None ~site:"x";
    Cancel.check (Some t) ~site:"x"
  done;
  Alcotest.(check int) "zero clock reads" 0 (Clock.reads () - r0)

(* --- checkpoint store ------------------------------------------------- *)

let fresh_dir () =
  let marker = Filename.temp_file "test_resilience" ".ckptdir" in
  Sys.remove marker;
  marker

let test_checkpoint_round_trip () =
  let dir = fresh_dir () in
  let ck = Checkpoint.create ~dir ~fingerprint:"fp-1" in
  Alcotest.(check (option reject)) "missing reads as None" None
    (Checkpoint.load ck ~stage:"train");
  let x = 0.1 +. 0.2 in
  Checkpoint.store ck ~stage:"train"
    (Minijson.Obj [ ("x", Minijson.Num x) ]);
  (match Checkpoint.load ck ~stage:"train" with
  | Some (Minijson.Obj [ ("x", Minijson.Num y) ]) ->
      Alcotest.(check int64) "float bit-exact" (Int64.bits_of_float x)
        (Int64.bits_of_float y)
  | _ -> Alcotest.fail "round trip lost the payload");
  (* a different fingerprint is stale, not invalid *)
  let other = Checkpoint.create ~dir ~fingerprint:"fp-2" in
  Alcotest.(check bool) "stale reads as None" true
    (Checkpoint.load other ~stage:"train" = None);
  (* a torn file is typed-invalid *)
  let path = Checkpoint.file ck ~stage:"train" in
  let text = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub text 0 (String.length text / 2)));
  (match Checkpoint.load ck ~stage:"train" with
  | exception Checkpoint.Invalid { file; _ } ->
      Alcotest.(check string) "invalid names the file" path file
  | _ -> Alcotest.fail "torn artifact was not rejected");
  Sys.remove path;
  Sys.rmdir dir

let test_checkpoint_kill_hook () =
  let dir = fresh_dir () in
  let ck = Checkpoint.create ~dir ~fingerprint:"fp" in
  Checkpoint.arm_kill ~after_stores:2;
  Checkpoint.store ck ~stage:"a" Minijson.Null;
  (match Checkpoint.store ck ~stage:"b" Minijson.Null with
  | exception Checkpoint.Killed { stage; stores } ->
      Alcotest.(check string) "killed at stage" "b" stage;
      Alcotest.(check int) "after two stores" 2 stores
  | () -> Alcotest.fail "armed kill never fired");
  (* self-disarmed: further stores survive, and the killed store's
     artifact is complete on disk *)
  Checkpoint.store ck ~stage:"c" Minijson.Null;
  Alcotest.(check bool) "killed store landed" true
    (Checkpoint.load ck ~stage:"b" = Some Minijson.Null);
  ignore (Checkpoint.disarm_kill ());
  List.iter
    (fun s -> Sys.remove (Checkpoint.file ck ~stage:s))
    [ "a"; "b"; "c" ];
  Sys.rmdir dir

(* --- pool exception safety ------------------------------------------- *)

let test_poisoned_fanout () =
  Exec.with_pool ~domains:2 (fun pool ->
      (match
         Exec.parallel_init ~pool 64 (fun i ->
             if i = 13 then failwith "poison" else i)
       with
      | exception Failure m ->
          Alcotest.(check string) "task exception re-raised" "poison" m
      | _ -> Alcotest.fail "raising task did not propagate");
      (* the pool must not be wedged: both further fan-outs complete *)
      for _ = 1 to 2 do
        let a = Exec.parallel_init ~pool 64 (fun i -> i * i) in
        Alcotest.(check int) "pool still works" (63 * 63) a.(63)
      done)

(* --- pipeline-level supervision --------------------------------------- *)

let config = Tft_rvf.Pipeline.buffer_config ~snapshots:24 ()

let try_extract ?cancel ?budgets ?checkpoint_dir ?retry () =
  Tft_rvf.Pipeline.try_extract ~guard:Guard.default ?cancel ?budgets
    ?checkpoint_dir ?retry ~config
    ~netlist:(Circuits.Buffer.netlist ())
    ~input:Circuits.Buffer.input_name ~output:Circuits.Buffer.output ()

let errors_with_stage report stage =
  List.filter
    (fun (e : Diag.event) -> e.Diag.level = Diag.Error && e.Diag.stage = stage)
    report.Diag.events

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* Park a hang at exactly the k-th escalation rung (1-based): the
   numeric fault defeats rungs 1..k-1 (one probe call per Rvf.extract),
   and a scope-restricted hang plan waits inside rung k's first VF
   relocation sweep. The rung budget must reap it with a typed
   deadline whose stage names the rung. *)
let test_rung_deadline k label () =
  with_clean_faults (fun () ->
      if k > 1 then begin
        Fault.arm_exact ~site:"rvf.trace_nan" ~fire_at:1 ~burst:(k - 1) ();
        Fault.arm_also_exact ~site:"vf.spin"
          ~scope:("rung:" ^ label)
          ~fire_at:1 ~burst:1 ()
      end
      else
        Fault.arm_exact ~site:"vf.spin"
          ~scope:("rung:" ^ label)
          ~fire_at:1 ~burst:1 ();
      let budgets =
        { Tft_rvf.Pipeline.no_budgets with Tft_rvf.Pipeline.rung = Some 0.25 }
      in
      let outcome, report = try_extract ~budgets () in
      (match Fault.stats_for "vf.spin" with
      | Some s when s.Fault.fires = 1 -> ()
      | _ -> Alcotest.fail (label ^ ": scoped hang never fired"));
      Alcotest.(check bool)
        (label ^ ": no model after tripped deadline")
        true (outcome = None);
      let stage = "pipeline.fit:" ^ label in
      match errors_with_stage report stage with
      | [] ->
          Alcotest.fail
            (Printf.sprintf "%s: no Error event with stage %S" label stage)
      | e :: _ ->
          Alcotest.(check bool)
            (label ^ ": typed deadline in message")
            true
            (contains ~needle:"Deadline_exceeded" e.Diag.message))

let test_retry_recovers_rung () =
  with_clean_faults (fun () ->
      (* one transient failure at the base rung's first attempt *)
      Fault.arm_exact ~site:"rvf.trace_nan" ~fire_at:1 ~burst:1 ();
      let retry =
        {
          Tft_rvf.Pipeline.attempts = 2;
          backoff_seconds = 0.01;
          backoff_multiplier = 2.0;
        }
      in
      let outcome, report = try_extract ~retry () in
      Alcotest.(check bool) "model recovered" true (outcome <> None);
      Alcotest.(check (option string))
        "still the base rung" (Some "base")
        (Diag.find_note report "pipeline.ladder_rung");
      Alcotest.(check int) "one within-rung retry" 1
        (Diag.counter report "pipeline.rung_retries");
      Alcotest.(check int) "no escalation consumed" 0
        (Diag.counter report "pipeline.fit_retries"))

let test_budgets_arm_private_token () =
  (* budgets without an explicit token must still be live *)
  let budgets =
    { Tft_rvf.Pipeline.no_budgets with Tft_rvf.Pipeline.train = Some 0.0 }
  in
  let outcome, report = try_extract ~budgets () in
  Alcotest.(check bool) "no model" true (outcome = None);
  match errors_with_stage report "pipeline.train" with
  | [] -> Alcotest.fail "no Error event with stage pipeline.train"
  | e :: _ ->
      Alcotest.(check bool) "typed deadline" true
        (contains ~needle:"Deadline_exceeded" e.Diag.message)

let test_extract_checkpoint_resume () =
  (* the raising entry point's checkpoint path: run, then resume with
     every stage settled — bit-identical model, zero recompute *)
  let dir = fresh_dir () in
  let extract () =
    Tft_rvf.Pipeline.extract ~checkpoint_dir:dir ~config
      ~netlist:(Circuits.Buffer.netlist ())
      ~input:Circuits.Buffer.input_name ~output:Circuits.Buffer.output ()
  in
  let first = extract () in
  let d = Diag.create () in
  let resumed =
    Tft_rvf.Pipeline.extract ~checkpoint_dir:dir ~diag:d ~config
      ~netlist:(Circuits.Buffer.netlist ())
      ~input:Circuits.Buffer.input_name ~output:Circuits.Buffer.output ()
  in
  Alcotest.(check string) "bit-identical equations"
    (Hammerstein.Hmodel.equations first.Tft_rvf.Pipeline.model)
    (Hammerstein.Hmodel.equations resumed.Tft_rvf.Pipeline.model);
  let report = Diag.report d in
  List.iter
    (fun stage ->
      Alcotest.(check (option string))
        ("resumed " ^ stage) (Some "loaded")
        (Diag.find_note report ("checkpoint." ^ stage)))
    [ "train"; "tft"; "fit-o0" ];
  Array.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  Sys.rmdir dir

let rungs =
  [
    "base";
    "more-start-poles";
    "switched-weighting";
    "relaxed-min-imag";
    "combined";
  ]

let suite =
  [
    Alcotest.test_case "cancel basics" `Quick test_cancel_basics;
    Alcotest.test_case "budget trips innermost" `Quick test_budget_trips;
    Alcotest.test_case "probe is clock-free" `Quick
      test_no_token_zero_clock_reads;
    Alcotest.test_case "checkpoint round trip" `Quick
      test_checkpoint_round_trip;
    Alcotest.test_case "checkpoint kill hook" `Quick
      test_checkpoint_kill_hook;
    Alcotest.test_case "poisoned fan-out" `Quick test_poisoned_fanout;
    Alcotest.test_case "retry recovers rung" `Quick test_retry_recovers_rung;
    Alcotest.test_case "budgets arm private token" `Quick
      test_budgets_arm_private_token;
    Alcotest.test_case "extract checkpoint resume" `Quick
      test_extract_checkpoint_resume;
  ]
  @ List.mapi
      (fun i label ->
        Alcotest.test_case
          (Printf.sprintf "deadline at rung %s" label)
          `Quick
          (test_rung_deadline (i + 1) label))
      rungs
