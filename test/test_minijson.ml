(* Round-trip and robustness suite for the self-contained JSON layer:
   Minijson.emit (with its built-in writers) must re-parse to the same
   value for everything the repo can write, and Minijson.parse must
   reject arbitrary malformed input with its typed Parse_error only —
   never Failure, Stack_overflow or an out-of-bounds access. *)

let check_close tol = Alcotest.(check (float tol))

(* structural equality with exact float comparison: %.17g round-trips
   every finite double bit-exactly *)
let rec equal a b =
  match (a, b) with
  | Minijson.Null, Minijson.Null -> true
  | Minijson.Bool x, Minijson.Bool y -> x = y
  | Minijson.Num x, Minijson.Num y -> Int64.bits_of_float x = Int64.bits_of_float y
  | Minijson.Str x, Minijson.Str y -> String.equal x y
  | Minijson.Arr x, Minijson.Arr y ->
      List.length x = List.length y && List.for_all2 equal x y
  | Minijson.Obj x, Minijson.Obj y ->
      List.length x = List.length y
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
           x y
  | _ -> false

(* ---------------- unit tests ---------------- *)

let test_emit_atoms () =
  Alcotest.(check string) "null" "null" (Minijson.emit Minijson.Null);
  Alcotest.(check string) "true" "true" (Minijson.emit (Minijson.Bool true));
  Alcotest.(check string) "string escape" "\"a\\\"b\\\\c\\n\""
    (Minijson.emit (Minijson.Str "a\"b\\c\n"));
  Alcotest.(check string) "empty arr" "[]" (Minijson.emit (Minijson.Arr []));
  Alcotest.(check string) "empty obj" "{}" (Minijson.emit (Minijson.Obj []))

let test_emit_non_finite () =
  (* the Minijson writer convention: non-finite floats become quoted strings so the
     document stays valid JSON *)
  Alcotest.(check string) "nan" "\"nan\"" (Minijson.emit (Minijson.Num Float.nan));
  Alcotest.(check string) "inf" "\"inf\""
    (Minijson.emit (Minijson.Num Float.infinity));
  Alcotest.(check string) "-inf" "\"-inf\""
    (Minijson.emit (Minijson.Num Float.neg_infinity))

let test_parse_basics () =
  (match Minijson.parse " { \"a\" : [ 1 , -2.5e3 , null ] } " with
  | Minijson.Obj [ ("a", Minijson.Arr [ Minijson.Num a; Minijson.Num b; Minijson.Null ]) ]
    ->
      check_close 0.0 "first" 1.0 a;
      check_close 0.0 "second" (-2500.0) b
  | _ -> Alcotest.fail "unexpected shape");
  match Minijson.parse "\"\\u0041\\u000a\"" with
  | Minijson.Str s -> Alcotest.(check string) "u-escapes" "A\n" s
  | _ -> Alcotest.fail "expected a string"

let test_parse_rejects () =
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %S" bad)
        true
        (match Minijson.parse bad with
        | exception Minijson.Parse_error _ -> true
        | _ -> false))
    [
      ""; "{"; "[1,"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated";
      "{\"a\" 1}"; "[1]]"; "nul"; "\"\\x\""; "\"\\u12\""; "+"; "--1";
    ]

(* ---------------- properties ---------------- *)

(* random Minijson values: depth-bounded, finite floats only (non-finite
   floats intentionally emit as strings, which changes the type) *)
let gen_value =
  let open QCheck.Gen in
  let finite_float =
    map
      (fun f -> if Float.is_finite f then f else 0.0)
      (oneof
         [
           float;
           map float_of_int int;
           (* exercise tiny/huge magnitudes and negative exponents *)
           map2 (fun m e -> m *. (10.0 ** float_of_int e)) (float_range (-10.0) 10.0)
             (int_range (-300) 300);
         ])
  in
  let any_string = string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 12) in
  fix (fun self depth ->
      let leaf =
        oneof
          [
            return Minijson.Null;
            map (fun b -> Minijson.Bool b) bool;
            map (fun f -> Minijson.Num f) finite_float;
            map (fun s -> Minijson.Str s) any_string;
          ]
      in
      if depth <= 0 then leaf
      else
        frequency
          [
            (2, leaf);
            ( 1,
              map
                (fun l -> Minijson.Arr l)
                (list_size (int_range 0 4) (self (depth - 1))) );
            ( 1,
              map
                (fun l -> Minijson.Obj l)
                (list_size (int_range 0 4)
                   (pair any_string (self (depth - 1)))) );
          ])
    3

let rec print_value = function
  | Minijson.Null -> "null"
  | Minijson.Bool b -> string_of_bool b
  | Minijson.Num f -> Printf.sprintf "%h" f
  | Minijson.Str s -> Printf.sprintf "%S" s
  | Minijson.Arr l -> "[" ^ String.concat "; " (List.map print_value l) ^ "]"
  | Minijson.Obj l ->
      "{"
      ^ String.concat "; "
          (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k (print_value v)) l)
      ^ "}"

let prop_emit_parse_roundtrip =
  QCheck.Test.make ~count:500 ~name:"minijson emit/parse round-trip"
    (QCheck.make ~print:print_value gen_value)
    (fun v ->
      let text = Minijson.emit v in
      match Minijson.parse text with
      | parsed ->
          if equal v parsed then true
          else QCheck.Test.fail_reportf "re-parse differs for %s" text
      | exception Minijson.Parse_error msg ->
          QCheck.Test.fail_reportf "emitted invalid JSON %s (%s)" text msg)

(* fuzz alphabet biased toward JSON structure so deep/broken nesting,
   truncated literals and wild escapes all get exercised *)
let fuzz_input =
  let open QCheck.Gen in
  let structural = "{}[]\",:\\.-+eE0123456789ntrufalse \t\n" in
  let any_char =
    frequency
      [
        (8, map (String.get structural) (int_bound (String.length structural - 1)));
        (1, map Char.chr (int_range 0 255));
      ]
  in
  string_size ~gen:any_char (int_bound 512)

let prop_parse_total =
  QCheck.Test.make ~count:2000 ~name:"minijson parse never fails untyped"
    (QCheck.make ~print:(Printf.sprintf "%S") fuzz_input)
    (fun s ->
      match Minijson.parse s with
      | _ -> true
      | exception Minijson.Parse_error _ -> true
      | exception e ->
          QCheck.Test.fail_reportf "untyped exception %s on %S"
            (Printexc.to_string e) s)

let suite =
  [
    Alcotest.test_case "emit atoms" `Quick test_emit_atoms;
    Alcotest.test_case "emit non-finite" `Quick test_emit_non_finite;
    Alcotest.test_case "parse basics" `Quick test_parse_basics;
    Alcotest.test_case "parse rejects" `Quick test_parse_rejects;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false)
      [ prop_emit_parse_roundtrip; prop_parse_total ]
