(* Chaos soak for the deadline-aware extraction supervisor: interrupt a
   seeded buffer extraction at checkpoint boundaries (simulated crash,
   torn write, tripped deadline) and prove every resume is bit-identical
   to the uninterrupted run — and that every simulated hang is reaped by
   its deadline with a typed error, never a silent stall.

   Scenarios per cycle:
     - kill after store 1/2/3 (Checkpoint.Killed) + resume
     - torn train artifact (checkpoint.torn_write) + resume past it
     - whole-run deadline mid-extraction + un-deadlined resume
     - one hang site per pipeline stage (tran.stall, exec.chunk_hang,
       vf.spin) under a stage budget: typed Deadline_exceeded within
       the budget, never the 2 s hang-cap Failure
     - sparse-path faults (sp.singular, krylov.stall) against a
       sparse-backend extraction: a seeded singularity escalates to the
       dense rung (counted in pipeline.sparse_fallbacks), a Krylov
       stall degrades in-sweep — both still deliver a finite model

   Bit-identity is machine-checked on three axes: the analytical model's
   equation text, the pipeline.ladder_rung note, and the raw bytes of
   the settled fit artifact on disk.

   `--quick` runs the 8-scenario cycle once (the @chaos-smoke alias);
   the default soak repeats the interrupt/resume cycles three times.
   Exits 0 and prints "chaos ok" on success. *)

let failures = ref []
let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt

let config = Tft_rvf.Pipeline.buffer_config ~snapshots:24 ()

let netlist = Circuits.Buffer.netlist ()

let run ?cancel ?budgets ?checkpoint_dir () =
  Tft_rvf.Pipeline.try_extract ?cancel ?budgets ?checkpoint_dir ~config
    ~netlist ~input:Circuits.Buffer.input_name ~output:Circuits.Buffer.output
    ()

(* --- scratch checkpoint directories ---------------------------------- *)

let fresh_dir () =
  (* temp_file gives a unique path; reuse the name as a directory *)
  let marker = Filename.temp_file "chaos_check" ".ckptdir" in
  Sys.remove marker;
  marker

let rm_dir dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* the one non-deterministic field in a fit artifact is its wall-clock
   build time; null it before comparing — everything numeric must be
   byte-identical *)
let rec scrub_build_seconds = function
  | Minijson.Obj fields ->
      Minijson.Obj
        (List.map
           (fun (k, v) ->
             if k = "build_seconds" then (k, Minijson.Num 0.0)
             else (k, scrub_build_seconds v))
           fields)
  | Minijson.Arr xs -> Minijson.Arr (List.map scrub_build_seconds xs)
  | j -> j

let read_fit_artifact path =
  Minijson.emit (scrub_build_seconds (Minijson.parse (read_file path)))

(* --- reference: the uninterrupted extraction -------------------------- *)

let equations (o : Tft_rvf.Pipeline.outcome) =
  Hammerstein.Hmodel.equations o.Tft_rvf.Pipeline.model

let rung_of report =
  Option.value ~default:"<none>" (Diag.find_note report "pipeline.ladder_rung")

let reference () =
  match run () with
  | Some o, report -> (equations o, rung_of report)
  | None, report ->
      List.iter
        (fun (e : Diag.event) ->
          Printf.eprintf "  %s: %s\n" e.Diag.stage e.Diag.message)
        report.Diag.events;
      prerr_endline "chaos_check: reference extraction failed; cannot soak";
      exit 1

let check_identical ~what ~ref_eq ~ref_rung outcome report =
  match outcome with
  | None ->
      fail "%s: resumed extraction produced no model" what;
      None
  | Some o ->
      if equations o <> ref_eq then
        fail "%s: resumed model differs from the uninterrupted run" what;
      let rung = rung_of report in
      if rung <> ref_rung then
        fail "%s: ladder rung %S differs from reference %S" what rung ref_rung;
      Some o

let loaded_stages report =
  List.filter
    (fun stage -> Diag.find_note report ("checkpoint." ^ stage) = Some "loaded")
    [ "train"; "tft"; "fit-o0" ]

(* --- scenario: clean checkpointed run == checkpoint-disabled run ------ *)

let check_clean_checkpointed ~ref_eq ~ref_rung =
  let dir = fresh_dir () in
  let outcome, report = run ~checkpoint_dir:dir () in
  ignore (check_identical ~what:"clean-checkpointed" ~ref_eq ~ref_rung outcome
            report);
  if loaded_stages report <> [] then
    fail "clean-checkpointed: fresh run claims to have loaded a checkpoint";
  let fit_file = Filename.concat dir "fit-o0.ckpt.json" in
  if not (Sys.file_exists fit_file) then begin
    fail "clean-checkpointed: no settled fit artifact on disk";
    rm_dir dir;
    None
  end
  else begin
    let bytes = read_fit_artifact fit_file in
    rm_dir dir;
    Printf.printf "  %-28s bit-identical to uncheckpointed\n%!"
      "clean checkpointed";
    Some bytes
  end

(* --- scenario: simulated crash after the n-th store + resume ---------- *)

let check_kill_resume ~ref_eq ~ref_rung ~ref_fit_bytes n =
  let what = Printf.sprintf "kill-after-%d" n in
  let dir = fresh_dir () in
  Checkpoint.arm_kill ~after_stores:n;
  (match run ~checkpoint_dir:dir () with
  | exception Checkpoint.Killed { stores; _ } ->
      if stores <> n then
        fail "%s: crashed after %d stores, expected %d" what stores n
  | _, _ -> fail "%s: armed crash never fired" what);
  ignore (Checkpoint.disarm_kill ());
  let outcome, report = run ~checkpoint_dir:dir () in
  ignore (check_identical ~what ~ref_eq ~ref_rung outcome report);
  let expected =
    match n with
    | 1 -> [ "train" ]
    | 2 -> [ "train"; "tft" ]
    | _ -> [ "train"; "tft"; "fit-o0" ]
  in
  let loaded = loaded_stages report in
  if loaded <> expected then
    fail "%s: resumed from [%s], expected [%s]" what
      (String.concat "," loaded)
      (String.concat "," expected);
  (match ref_fit_bytes with
  | Some bytes ->
      let fit = read_fit_artifact (Filename.concat dir "fit-o0.ckpt.json") in
      if fit <> bytes then
        fail "%s: settled fit artifact differs byte-for-byte from reference"
          what
  | None -> ());
  rm_dir dir;
  Printf.printf "  %-28s resumed from [%s], bit-identical\n%!" what
    (String.concat "," expected)

(* --- scenario: torn artifact rejected and recomputed on resume -------- *)

let check_torn_write ~ref_eq ~ref_rung =
  let what = "torn-write" in
  let dir = fresh_dir () in
  (* seed 0: the very first store (the train artifact) is torn *)
  Fault.arm ~site:"checkpoint.torn_write" ~seed:0 ();
  let first = run ~checkpoint_dir:dir () in
  ignore (Fault.disarm ());
  (match first with
  | Some o, _ ->
      if equations o <> ref_eq then
        fail "%s: in-memory model of the torn run differs" what
  | None, _ -> fail "%s: torn store failed the extraction itself" what);
  (* the torn file must be typed-rejected, warned about, and recomputed *)
  let outcome, report = run ~checkpoint_dir:dir () in
  ignore (check_identical ~what ~ref_eq ~ref_rung outcome report);
  let warned =
    List.exists
      (fun (e : Diag.event) ->
        e.Diag.level = Diag.Warning
        && e.Diag.stage = "pipeline.checkpoint"
        && String.length e.Diag.message >= 8
        && String.sub e.Diag.message 0 8 = "rejected")
      report.Diag.events
  in
  if not warned then
    fail "%s: no rejected-artifact warning on resume (silent acceptance?)"
      what;
  if List.mem "train" (loaded_stages report) then
    fail "%s: torn train artifact was loaded as-is" what;
  rm_dir dir;
  Printf.printf "  %-28s typed rejection + recompute\n%!" what

(* --- scenario: deadline interrupt + resume ---------------------------- *)

let check_deadline_resume ~ref_eq ~ref_rung ~deadline =
  let what = Printf.sprintf "deadline-%.2fs" deadline in
  let dir = fresh_dir () in
  let cancel = Cancel.create ~deadline_seconds:deadline () in
  (match run ~cancel ~checkpoint_dir:dir () with
  | Some _, _ ->
      (* generous deadlines can let the run finish; that is not a
         failure of the supervisor, just a fast host *)
      ()
  | None, report ->
      if not (Diag.has_errors report) then
        fail "%s: no model and no Error event — interrupt was silent" what);
  let outcome, report = run ~checkpoint_dir:dir () in
  ignore (check_identical ~what ~ref_eq ~ref_rung outcome report);
  rm_dir dir;
  Printf.printf "  %-28s resumed to a bit-identical model\n%!" what

(* --- scenario: hang sites reaped by their stage budget ----------------- *)

let error_messages report =
  List.filter_map
    (fun (e : Diag.event) ->
      if e.Diag.level = Diag.Error then
        Some (e.Diag.stage ^ ": " ^ e.Diag.message)
      else None)
    report.Diag.events

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let check_hang_reaped ~site ~budgets ~domains () =
  let budget = 0.4 in
  let config = { config with Tft_rvf.Pipeline.domains } in
  Fault.arm ~site ~seed:0 ();
  let t0 = Clock.now () in
  let result =
    try
      Ok
        (Tft_rvf.Pipeline.try_extract ~budgets ~config ~netlist
           ~input:Circuits.Buffer.input_name ~output:Circuits.Buffer.output ())
    with e -> Error e
  in
  let elapsed = Clock.now () -. t0 in
  let stats = Fault.disarm () in
  (match stats with
  | Some s when s.Fault.fires > 0 -> ()
  | _ -> fail "%s: hang probe never fired" site);
  (match result with
  | Error e ->
      fail "%s: exception escaped the supervisor: %s" site
        (Printexc.to_string e)
  | Ok (Some _, _) -> fail "%s: returned a model after a tripped deadline" site
  | Ok (None, report) -> (
      match error_messages report with
      | [] -> fail "%s: hang produced no Error event" site
      | msgs ->
          if not (List.exists (contains ~needle:"Deadline_exceeded") msgs)
          then
            fail "%s: error is not the typed deadline (got: %s)" site
              (String.concat " | " msgs)));
  (* reap latency: the budget plus generous slack for the non-hanging
     stages — and strictly inside the 2 s hang hard cap, proving the
     deadline (not the cap) did the reaping *)
  let reap_slack = 1.5 in
  if elapsed > budget +. reap_slack then
    fail "%s: reaped in %.2fs, budget %.2fs + %.1fs slack" site elapsed budget
      reap_slack;
  Printf.printf "  %-28s typed deadline in %.2fs (budget %.2fs)\n%!" site
    elapsed budget

let check_hangs () =
  let b = Tft_rvf.Pipeline.no_budgets in
  check_hang_reaped ~site:"tran.stall"
    ~budgets:{ b with Tft_rvf.Pipeline.train = Some 0.4 }
    ~domains:1 ();
  check_hang_reaped ~site:"exec.chunk_hang"
    ~budgets:{ b with Tft_rvf.Pipeline.tft = Some 0.4 }
    ~domains:2 ();
  check_hang_reaped ~site:"vf.spin"
    ~budgets:{ b with Tft_rvf.Pipeline.fit = Some 0.4 }
    ~domains:1 ()

(* --- scenario: sparse-path faults escalate to dense -------------------- *)

(* the sparse backend's failure contract: a sparse singularity seeded
   into the TFT stage (scope "stage:tft", so the training transient's
   own factorizations don't consume the schedule) must land in the
   dense-escalation rung — counted in pipeline.sparse_fallbacks — and
   still deliver a finite model; a Krylov stall degrades in-sweep to
   exact per-point solves and the extraction proceeds as if nothing
   happened *)
let check_sparse_escalation ~site () =
  let sparse_config =
    { config with Tft_rvf.Pipeline.backend = Engine.Mna.Sparse }
  in
  Fault.arm_exact ~site ~scope:"stage:tft" ~fire_at:1 ~burst:1 ();
  let result =
    try
      Ok
        (Tft_rvf.Pipeline.try_extract ~config:sparse_config ~netlist
           ~input:Circuits.Buffer.input_name ~output:Circuits.Buffer.output ())
    with e -> Error e
  in
  let stats = Fault.disarm () in
  (match stats with
  | Some s when s.Fault.fires > 0 -> ()
  | _ -> fail "%s: sparse probe never fired" site);
  match result with
  | Error e ->
      fail "%s: exception escaped the non-raising pipeline: %s" site
        (Printexc.to_string e)
  | Ok (None, _) -> fail "%s: sparse fault defeated the dense escalation" site
  | Ok (Some outcome, report) ->
      let se =
        Tft_rvf.Report.surface_error ~model:outcome.Tft_rvf.Pipeline.model
          ~dataset:outcome.Tft_rvf.Pipeline.dataset ~input:0 ~output:0
      in
      if
        not
          (Float.is_finite se.Tft_rvf.Report.rms
          && Float.is_finite se.Tft_rvf.Report.max_err)
      then fail "%s: escalated model evaluates to NaN/Inf" site;
      let fallbacks = Diag.counter report "pipeline.sparse_fallbacks" in
      if site = "sp.singular" && fallbacks = 0 then
        fail "%s: recovery did not record a sparse fallback" site;
      Printf.printf "  %-28s recovered (%d dense fallback(s))\n%!" site
        fallbacks

(* --- driver ----------------------------------------------------------- *)

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let cycles = if quick then 1 else 3 in
  Printf.printf "chaos soak (%d cycle%s):\n%!" cycles
    (if cycles = 1 then "" else "s");
  let ref_eq, ref_rung = reference () in
  let ref_fit_bytes = check_clean_checkpointed ~ref_eq ~ref_rung in
  for cycle = 1 to cycles do
    if cycles > 1 then Printf.printf "cycle %d:\n%!" cycle;
    List.iter
      (fun n -> check_kill_resume ~ref_eq ~ref_rung ~ref_fit_bytes n)
      [ 1; 2; 3 ];
    check_torn_write ~ref_eq ~ref_rung;
    check_deadline_resume ~ref_eq ~ref_rung
      ~deadline:(0.05 *. float_of_int cycle)
  done;
  check_hangs ();
  check_sparse_escalation ~site:"sp.singular" ();
  check_sparse_escalation ~site:"krylov.stall" ();
  match !failures with
  | [] -> print_endline "chaos ok"
  | fs ->
      List.iter (fun m -> Printf.eprintf "chaos_check: %s\n" m) (List.rev fs);
      exit 1
