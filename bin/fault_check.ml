(* Chaos sweep over the fault-injection registry: arm every registered
   site in turn against a guarded buffer extraction and check the
   recovery contract — each probe actually fires, and the pipeline
   either recovers to a finite model or returns a structured typed
   error. A silent NaN in a "successful" model or an escaped exception
   fails the sweep.

   With the tft_extract binary's path as argv(1), also validates the
   CLI failure contract end-to-end: an armed fault that defeats every
   escalation rung must exit nonzero with a schema-versioned JSON error
   object on stderr.

   Exits 0 and prints "fault ok" on success. Wired into `dune runtest`
   as the @fault-smoke alias. *)

let failures = ref []

let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt

let finite_model outcome =
  let se =
    Tft_rvf.Report.surface_error ~model:outcome.Tft_rvf.Pipeline.model
      ~dataset:outcome.Tft_rvf.Pipeline.dataset ~input:0 ~output:0
  in
  Float.is_finite se.Tft_rvf.Report.rms
  && Float.is_finite se.Tft_rvf.Report.max_err

let sweep_site (site : Fault.site) =
  let name = site.Fault.name in
  (* seed 0: fire on the probe's very first invocation, once — every
     recovery layer (gmin stepping, BE fallback, quarantine, the
     ladder) gets exercised from a deterministic point *)
  Fault.arm ~site:name ~seed:0 ();
  let config = Tft_rvf.Pipeline.buffer_config ~snapshots:30 () in
  (* the sparse-tier sites live on the sparse solve path: run those
     sweeps with the sparse backend so the probes are on-path, and the
     recovery under test is the pipeline's dense-escalation rung *)
  let config =
    if List.mem name [ "sp.singular"; "krylov.stall" ] then
      { config with Tft_rvf.Pipeline.backend = Engine.Mna.Sparse }
    else config
  in
  let result =
    try
      Ok
        (Tft_rvf.Pipeline.try_extract ~guard:Guard.default ~config
           ~netlist:(Circuits.Buffer.netlist ())
           ~input:Circuits.Buffer.input_name ~output:Circuits.Buffer.output ())
    with e -> Error e
  in
  let stats = Fault.disarm () in
  (match stats with
  | None -> fail "%s: plan vanished before disarm" name
  | Some s ->
      if s.Fault.fires = 0 then
        fail "%s: probe never fired (%d calls) — site not on the buffer path"
          name s.Fault.calls);
  match result with
  | Error e ->
      fail "%s: exception escaped the non-raising pipeline: %s" name
        (Printexc.to_string e)
  | Ok (Some outcome, report) ->
      if not (finite_model outcome) then
        fail "%s: recovered model evaluates to NaN/Inf (silent corruption)"
          name;
      Printf.printf "  %-24s recovered (%d retries, rung %s)\n%!" name
        (Diag.counter report "pipeline.fit_retries")
        (Option.value ~default:"base"
           (Diag.find_note report "pipeline.ladder_rung"))
  | Ok (None, report) ->
      if not (Diag.has_errors report) then
        fail "%s: no model and no Error event — failure was silent" name;
      let first =
        match
          List.filter
            (fun (e : Diag.event) -> e.Diag.level = Diag.Error)
            report.Diag.events
        with
        | e :: _ -> Printf.sprintf "%s: %s" e.Diag.stage e.Diag.message
        | [] -> ""
      in
      Printf.printf "  %-24s typed error (%s)\n%!" name first

(* --- CLI failure contract (subprocess) ------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check_cli_error_json exe =
  (* dune hands over a path relative to the rule's directory; anchor it
     so the shell doesn't fall back to a $PATH lookup *)
  let exe =
    if Filename.is_relative exe && not (String.contains exe '/') then
      Filename.concat Filename.current_dir_name exe
    else exe
  in
  (* seed 40: fire_at 1, burst 6 — defeats all five escalation rungs,
     forcing the structured-error exit path *)
  let err = Filename.temp_file "fault_check" ".stderr" in
  let cmd =
    Printf.sprintf
      "%s --builtin buffer --snapshots 30 --guard --fault rvf.trace_nan:40 \
       > /dev/null 2> %s"
      (Filename.quote exe) (Filename.quote err)
  in
  let status = Sys.command cmd in
  if status <> 1 then fail "cli: expected exit 1 on exhausted ladder, got %d" status;
  let text = read_file err in
  Sys.remove err;
  (* stderr leads with the fault fire-count line; the JSON object follows *)
  match String.index_opt text '{' with
  | None -> fail "cli: no JSON error object on stderr"
  | Some i -> (
      let json = String.sub text i (String.length text - i) in
      match Minijson.parse json with
      | exception Minijson.Parse_error msg ->
          fail "cli: stderr JSON does not parse: %s" msg
      | root ->
          if Minijson.num_field root "schema_version" <> Some 1.0 then
            fail "cli: error object schema_version <> 1";
          let error = Option.value ~default:Minijson.Null (Minijson.field root "error") in
          if Minijson.str_field error "stage" = None then
            fail "cli: error object missing error.stage";
          if Minijson.str_field error "message" = None then
            fail "cli: error object missing error.message";
          (match Minijson.num_field root "fit_retries" with
          | Some r when r >= 5.0 -> ()
          | _ -> fail "cli: fit_retries missing or < 5 with the ladder exhausted");
          if Minijson.arr_field root "events" = None then
            fail "cli: error object missing events array";
          Printf.printf "  %-24s exit 1 + JSON error object\n%!" "cli contract")

let () =
  (* numeric-corruption sites only: the hang and storage sites have no
     recovery ladder to exercise — they are soaked by chaos_check, which
     arms deadlines and a checkpoint store around them *)
  let numeric =
    List.filter (fun (s : Fault.site) -> s.Fault.kind = Fault.Numeric)
      Fault.sites
  in
  Printf.printf "chaos sweep over %d fault sites:\n%!" (List.length numeric);
  List.iter sweep_site numeric;
  (match Sys.argv with
  | [| _; exe |] -> check_cli_error_json exe
  | _ -> fail "usage: fault_check <tft_extract.exe>");
  match !failures with
  | [] -> print_endline "fault ok"
  | fs ->
      List.iter (fun m -> Printf.eprintf "fault_check: %s\n" m) (List.rev fs);
      exit 1
