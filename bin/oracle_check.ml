(* Run the analytical oracle battery and report its verdicts.

   Usage: oracle_check [--quick] [--json FILE]

   Prints the one-line-per-check summary table to stdout, optionally
   writes the schema-versioned JSON verdict, and exits 1 if any check
   failed (tolerance exceeded, NaN metric, or an escaped exception) —
   so both CI aliases and humans can gate on the battery. *)

let () =
  let quick = ref false in
  let json_path = ref None in
  let rec parse_args = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse_args rest
    | "--json" :: path :: rest ->
        json_path := Some path;
        parse_args rest
    | arg :: _ ->
        Printf.eprintf "usage: oracle_check [--quick] [--json FILE] (got %S)\n"
          arg;
        exit 2
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let verdicts = Oracle.Battery.run ~quick:!quick () in
  print_string (Oracle.Battery.summary verdicts);
  (match !json_path with
  | Some path ->
      let oc = open_out path in
      output_string oc (Oracle.Battery.json ~quick:!quick verdicts);
      output_char oc '\n';
      close_out oc
  | None -> ());
  if Oracle.Battery.all_passed verdicts then print_endline "oracle ok"
  else begin
    prerr_endline "oracle_check: battery FAILED";
    exit 1
  end
