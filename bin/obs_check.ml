(* Observability-bundle smoke: drive `tft_extract --obs-dir` on the
   built-in buffer circuit, validate the written bundle end-to-end with
   the typed loader, check the convergence stream actually carries the
   algorithmic telemetry (per-iteration VF pole positions, rcond
   samples, stage boundaries, a settled pole count), render it through
   obs_report, and confirm obs_report rejects a deliberately corrupted
   bundle with a nonzero exit.

   Exits 0 and prints "obs ok" on success. Wired into `dune runtest`
   as the @obs-smoke alias. *)

let failures = ref []

let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt

let anchor exe =
  (* dune hands over a path relative to the rule's directory; anchor it
     so the shell doesn't fall back to a $PATH lookup *)
  if Filename.is_relative exe && not (String.contains exe '/') then
    Filename.concat Filename.current_dir_name exe
  else exe

let fresh_dir tag =
  let path = Filename.temp_file "obs_check" tag in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let events_of_kind kind (bundle : Obs_bundle.t) =
  List.filter
    (fun e -> Minijson.str_field e "type" = Some kind)
    bundle.Obs_bundle.events

(* --- the happy path: extract, load, inspect, render ----------------- *)

let check_stream (bundle : Obs_bundle.t) =
  (match Minijson.str_field bundle.Obs_bundle.manifest "status" with
  | Some "ok" -> ()
  | s ->
      fail "manifest status %S, expected \"ok\""
        (Option.value ~default:"<missing>" s));
  (match Minijson.obj_field bundle.Obs_bundle.manifest "host" with
  | None -> fail "manifest missing host object"
  | Some host -> (
      match Minijson.num_field (Minijson.Obj host) "cores" with
      | Some c when c >= 1.0 -> ()
      | _ -> fail "manifest host.cores missing or < 1"));
  let iters = events_of_kind "vf_iteration" bundle in
  if iters = [] then fail "no vf_iteration events in convergence.jsonl";
  List.iter
    (fun e ->
      match Minijson.arr_field e "poles" with
      | None | Some [] ->
          fail "a vf_iteration event carries no pole positions"
      | Some poles ->
          List.iter
            (fun p ->
              match p with
              | Minijson.Arr [ Minijson.Num _; Minijson.Num _ ] -> ()
              | _ -> fail "a vf_iteration pole is not a [re, im] pair")
            poles)
    iters;
  (* every relocation sweep of every fit must stream its pole set: the
     vf.sigma_rms histogram counts exactly the relocation sweeps *)
  (match Minijson.field bundle.Obs_bundle.metrics "histograms" with
  | Some (Minijson.Arr hists) ->
      let sweeps =
        List.fold_left
          (fun acc h ->
            match Minijson.str_field h "name" with
            | Some name
              when String.length name >= 10
                   && String.sub name (String.length name - 9) 9 = "sigma_rms"
              ->
                acc
                + int_of_float (Option.value ~default:0.0 (Minijson.num_field h "count"))
            | _ -> acc)
          0 hists
      in
      if sweeps <> List.length iters then
        fail "vf_iteration events (%d) <> recorded relocation sweeps (%d)"
          (List.length iters) sweeps
  | _ -> fail "metrics.json missing histograms array");
  if events_of_kind "vf_settled" bundle = [] then
    fail "no vf_settled event: fit_auto escalation left no record";
  if events_of_kind "stage" bundle = [] then fail "no stage boundary events";
  let rconds = events_of_kind "rcond" bundle in
  let sites =
    List.sort_uniq compare
      (List.filter_map (fun e -> Minijson.str_field e "site") rconds)
  in
  List.iter
    (fun want ->
      if not (List.mem want sites) then
        fail "no rcond samples from site %S (saw: %s)" want
          (String.concat ", " sites))
    [ "dc.lu"; "ac.pencil"; "vf.sigma_qr" ];
  List.iter
    (fun e ->
      match Minijson.num_field e "value" with
      | Some v when Float.is_finite v && v >= 0.0 && v <= 1.0 -> ()
      | _ -> fail "an rcond sample is outside [0, 1]")
    rconds

let check_report out_dir =
  let html = read_file (Filename.concat out_dir "report.html") in
  if not (String.length html > 0 && String.sub html 0 15 = "<!DOCTYPE html>") then
    fail "report.html does not start with a doctype";
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      if not (contains html needle) then
        fail "report.html missing %S" needle)
    [ "<svg"; "Pole migration"; "Residual decay"; "Self time" ];
  let om = read_file (Filename.concat out_dir "metrics.om") in
  let n = String.length om in
  if n < 6 || String.sub om (n - 6) 6 <> "# EOF\n" then
    fail "metrics.om is not terminated by \"# EOF\""

(* --- the failure contract: corrupted bundle → typed nonzero exit ---- *)

let check_malformed report_exe bundle_dir =
  let bad = fresh_dir ".bad" in
  Array.iter
    (fun f ->
      write_file (Filename.concat bad f)
        (read_file (Filename.concat bundle_dir f)))
    (Sys.readdir bundle_dir);
  write_file (Filename.concat bad "metrics.json") "{ not json";
  (match Obs_bundle.load bad with
  | _ -> fail "loader accepted a bundle with unparsable metrics.json"
  | exception Obs_bundle.Invalid { file = "metrics.json"; _ } -> ()
  | exception Obs_bundle.Invalid { file; _ } ->
      fail "loader blamed %S for corrupt metrics.json" file);
  let status =
    Sys.command
      (Printf.sprintf "%s %s > /dev/null 2> /dev/null"
         (Filename.quote report_exe) (Filename.quote bad))
  in
  if status = 0 then fail "obs_report exited 0 on a malformed bundle";
  rm_rf bad

let () =
  let extract_exe, report_exe =
    match Sys.argv with
    | [| _; e; r |] -> (anchor e, anchor r)
    | _ ->
        prerr_endline "usage: obs_check <tft_extract.exe> <obs_report.exe>";
        exit 2
  in
  let dir = fresh_dir ".bundle" in
  let status =
    Sys.command
      (Printf.sprintf
         "%s --builtin buffer --snapshots 30 --obs-dir %s > /dev/null 2> \
          /dev/null"
         (Filename.quote extract_exe) (Filename.quote dir))
  in
  if status <> 0 then begin
    Printf.eprintf "obs_check: tft_extract --obs-dir exited %d\n" status;
    exit 1
  end;
  (match Obs_bundle.load dir with
  | bundle ->
      check_stream bundle;
      Printf.printf "  bundle valid (%d events)\n%!"
        (List.length bundle.Obs_bundle.events)
  | exception Obs_bundle.Invalid { file; reason } ->
      fail "fresh bundle invalid: %s"
        (Obs_bundle.describe_invalid ~file ~reason));
  let rstatus =
    Sys.command
      (Printf.sprintf "%s %s > /dev/null 2> /dev/null"
         (Filename.quote report_exe) (Filename.quote dir))
  in
  if rstatus <> 0 then fail "obs_report exited %d on a valid bundle" rstatus
  else check_report dir;
  check_malformed report_exe dir;
  rm_rf dir;
  match !failures with
  | [] -> print_endline "obs ok"
  | fs ->
      List.iter (fun m -> Printf.eprintf "obs_check: %s\n" m) (List.rev fs);
      exit 1
