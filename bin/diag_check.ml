(* Smoke-test validator for `tft_extract --diag` output: parses the JSON
   report with the shared Minijson reader and checks the schema shape
   plus a few invariants a healthy buffer extraction must satisfy.
   Exits 0 and prints "diag ok" on success, 1 with a message otherwise. *)

let check_failures = ref []

let check cond msg = if not cond then check_failures := msg :: !check_failures

let () =
  let path =
    match Sys.argv with
    | [| _; p |] -> p
    | _ ->
        prerr_endline "usage: diag_check <diag.json>";
        exit 2
  in
  let root =
    try Minijson.parse_file path
    with Minijson.Parse_error msg ->
      Printf.eprintf "diag_check: %s: invalid JSON: %s\n" path msg;
      exit 1
  in
  check
    (Minijson.num_field root "schema_version" = Some 1.0)
    "schema_version <> 1";
  let spans = Option.value ~default:[] (Minijson.arr_field root "spans") in
  check (Minijson.field root "spans" <> None) "missing spans";
  let span_stages =
    List.filter_map (fun sp -> Minijson.str_field sp "stage") spans
  in
  check
    (List.length span_stages = List.length spans)
    "a span is missing its stage";
  List.iter
    (fun sp ->
      match Minijson.num_field sp "seconds" with
      | Some sec -> check (sec >= 0.0) "negative span duration"
      | None -> check false "a span is missing its seconds")
    spans;
  List.iter
    (fun stage ->
      check
        (List.mem stage span_stages)
        (Printf.sprintf "missing pipeline span %S" stage))
    [ "pipeline.train"; "pipeline.tft"; "pipeline.fit" ];
  let counters =
    Option.value ~default:[] (Minijson.obj_field root "counters")
  in
  check (Minijson.field root "counters" <> None) "missing counters";
  let counter name =
    Option.bind (List.assoc_opt name counters) Minijson.as_num
  in
  let steps = Option.value ~default:0.0 (counter "tran.steps") in
  let newton =
    Option.value ~default:0.0 (counter "tran.newton_iterations")
  in
  check (steps > 0.0) "tran.steps missing or zero";
  check (newton >= steps)
    "tran.newton_iterations < tran.steps (per-step counting regressed)";
  let stats = Option.value ~default:[] (Minijson.arr_field root "stats") in
  check (Minijson.field root "stats" <> None) "missing stats";
  let stat_names =
    List.filter_map (fun st -> Minijson.str_field st "name") stats
  in
  check
    (List.exists
       (fun nm -> String.length nm >= 3 && String.sub nm 0 3 = "vf.")
       stat_names)
    "no vector-fitting stats recorded";
  check (Minijson.field root "events" <> None) "missing events";
  check
    (Minijson.arr_field root "events" <> None)
    "events is not an array";
  let notes = Option.value ~default:[] (Minijson.obj_field root "notes") in
  check (Minijson.field root "notes" <> None) "missing notes";
  check
    (List.assoc_opt "pipeline.ladder_rung" notes <> None)
    "missing pipeline.ladder_rung note";
  match !check_failures with
  | [] -> print_endline "diag ok"
  | failures ->
      List.iter (fun m -> Printf.eprintf "diag_check: %s: %s\n" path m)
        (List.rev failures);
      exit 1
