(* Smoke-test validator for `tft_extract --diag` output: parses the JSON
   report with a tiny self-contained parser and checks the schema shape
   plus a few invariants a healthy buffer extraction must satisfy.
   Exits 0 and prints "diag ok" on success, 1 with a message otherwise. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'; loop ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; loop ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; loop ()
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; loop ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; loop ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; loop ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; loop ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; loop ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* the report only escapes control chars; keep it simple *)
              if code < 128 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_char buf '?';
              loop ()
          | _ -> fail "bad escape")
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((key, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elems (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* --- schema checks ---------------------------------------------------- *)

let check_failures = ref []

let check cond msg = if not cond then check_failures := msg :: !check_failures

let obj_field o key =
  match o with Obj fields -> List.assoc_opt key fields | _ -> None

let as_arr = function Arr l -> Some l | _ -> None
let as_obj = function Obj l -> Some l | _ -> None
let as_str = function Str s -> Some s | _ -> None
let as_num = function Num f -> Some f | _ -> None

let () =
  let path =
    match Sys.argv with
    | [| _; p |] -> p
    | _ ->
        prerr_endline "usage: diag_check <diag.json>";
        exit 2
  in
  let text =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let b = really_input_string ic len in
    close_in ic;
    b
  in
  let root =
    try parse text
    with Parse_error msg ->
      Printf.eprintf "diag_check: %s: invalid JSON: %s\n" path msg;
      exit 1
  in
  check (obj_field root "schema_version" = Some (Num 1.0)) "schema_version <> 1";
  let spans =
    Option.value ~default:[]
      (Option.bind (obj_field root "spans") as_arr)
  in
  check (obj_field root "spans" <> None) "missing spans";
  let span_stages =
    List.filter_map
      (fun sp -> Option.bind (obj_field sp "stage") as_str)
      spans
  in
  check
    (List.length span_stages = List.length spans)
    "a span is missing its stage";
  List.iter
    (fun sp ->
      match Option.bind (obj_field sp "seconds") as_num with
      | Some sec -> check (sec >= 0.0) "negative span duration"
      | None -> check false "a span is missing its seconds")
    spans;
  List.iter
    (fun stage ->
      check
        (List.mem stage span_stages)
        (Printf.sprintf "missing pipeline span %S" stage))
    [ "pipeline.train"; "pipeline.tft"; "pipeline.fit" ];
  let counters =
    Option.value ~default:[]
      (Option.bind (obj_field root "counters") as_obj)
  in
  check (obj_field root "counters" <> None) "missing counters";
  let counter name = Option.bind (List.assoc_opt name counters) as_num in
  let steps = Option.value ~default:0.0 (counter "tran.steps") in
  let newton =
    Option.value ~default:0.0 (counter "tran.newton_iterations")
  in
  check (steps > 0.0) "tran.steps missing or zero";
  check (newton >= steps)
    "tran.newton_iterations < tran.steps (per-step counting regressed)";
  let stats =
    Option.value ~default:[] (Option.bind (obj_field root "stats") as_arr)
  in
  check (obj_field root "stats" <> None) "missing stats";
  let stat_names =
    List.filter_map (fun st -> Option.bind (obj_field st "name") as_str) stats
  in
  check
    (List.exists
       (fun nm -> String.length nm >= 3 && String.sub nm 0 3 = "vf.")
       stat_names)
    "no vector-fitting stats recorded";
  check (obj_field root "events" <> None) "missing events";
  check
    (Option.bind (obj_field root "events") as_arr <> None)
    "events is not an array";
  let notes =
    Option.value ~default:[] (Option.bind (obj_field root "notes") as_obj)
  in
  check (obj_field root "notes" <> None) "missing notes";
  check
    (List.assoc_opt "pipeline.ladder_rung" notes <> None)
    "missing pipeline.ladder_rung note";
  match !check_failures with
  | [] -> print_endline "diag ok"
  | failures ->
      List.iter (fun m -> Printf.eprintf "diag_check: %s: %s\n" path m)
        (List.rev failures);
      exit 1
