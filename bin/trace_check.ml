(* Smoke-test validator for `tft_extract --trace` / `--metrics` output:
   checks that the Chrome trace-event JSON is well-formed and actually
   hierarchical (nested spans, multiple stages, one track per domain,
   parent links consistent, children contained in their parents) and
   that the metrics registry carries the expected counters and
   histograms with self-consistent buckets.

     trace_check <trace.json> <metrics.json>

   Exits 0 and prints "trace ok" on success, 1 with messages otherwise. *)

let check_failures = ref []

let check cond msg = if not cond then check_failures := msg :: !check_failures

(* generous slack for float roundoff in the µs timestamps *)
let eps_us = 0.5

let check_trace root =
  check
    (Minijson.num_field root "schema_version" = Some 1.0)
    "trace: schema_version <> 1";
  let events =
    Option.value ~default:[] (Minijson.arr_field root "traceEvents")
  in
  check (events <> []) "trace: no traceEvents";
  let xs =
    List.filter (fun e -> Minijson.str_field e "ph" = Some "X") events
  in
  let ms =
    List.filter (fun e -> Minijson.str_field e "ph" = Some "M") events
  in
  check (xs <> []) "trace: no complete (X) events";
  (* every X event carries ts, dur >= 0, tid, and id/parent in args *)
  let spans =
    List.filter_map
      (fun e ->
        let ts = Minijson.num_field e "ts" in
        let dur = Minijson.num_field e "dur" in
        let tid = Minijson.num_field e "tid" in
        let name = Minijson.str_field e "name" in
        let args = Option.value ~default:Minijson.Null (Minijson.field e "args") in
        let id = Minijson.num_field args "id" in
        let parent = Minijson.num_field args "parent" in
        match (ts, dur, tid, name, id, parent) with
        | Some ts, Some dur, Some tid, Some name, Some id, Some parent ->
            check (dur >= 0.0)
              (Printf.sprintf "trace: span %S has negative duration" name);
            Some (int_of_float id, (name, ts, dur, int_of_float tid,
                                    int_of_float parent))
        | _ ->
            check false "trace: an X event is missing ts/dur/tid/name/args.id/args.parent";
            None)
      xs
  in
  let names =
    List.sort_uniq compare (List.map (fun (_, (n, _, _, _, _)) -> n) spans)
  in
  check
    (List.length names >= 5)
    (Printf.sprintf "trace: only %d distinct span names (want >= 5)"
       (List.length names));
  let tids =
    List.sort_uniq compare (List.map (fun (_, (_, _, _, t, _)) -> t) spans)
  in
  check
    (List.length tids >= 2)
    (Printf.sprintf "trace: only %d track(s) (want >= 2 with --domains 2)"
       (List.length tids));
  (* ids unique *)
  let ids = List.map fst spans in
  check
    (List.length (List.sort_uniq compare ids) = List.length ids)
    "trace: duplicate span ids";
  (* every track has thread-name metadata *)
  let named_tids =
    List.filter_map
      (fun e ->
        if Minijson.str_field e "name" = Some "thread_name" then
          Option.map int_of_float (Minijson.num_field e "tid")
        else None)
      ms
  in
  List.iter
    (fun t ->
      check (List.mem t named_tids)
        (Printf.sprintf "trace: track %d has no thread_name metadata" t))
    tids;
  (* parent links resolve, stay on-track nested, and children fit inside
     their parent (so per-span self time is non-negative) *)
  let tbl = Hashtbl.create 256 in
  List.iter (fun (id, sp) -> Hashtbl.replace tbl id sp) spans;
  let child_sum = Hashtbl.create 256 in
  List.iter
    (fun (_, (name, ts, dur, tid, parent)) ->
      if parent >= 0 then
        match Hashtbl.find_opt tbl parent with
        | None ->
            check false
              (Printf.sprintf "trace: span %S has dangling parent %d" name
                 parent)
        | Some (pname, pts, pdur, ptid, _) ->
            if ptid = tid then begin
              check
                (ts +. eps_us >= pts && ts +. dur <= pts +. pdur +. eps_us)
                (Printf.sprintf "trace: span %S escapes its parent %S" name
                   pname);
              Hashtbl.replace child_sum parent
                (dur
                +. Option.value ~default:0.0
                     (Hashtbl.find_opt child_sum parent))
            end)
    spans;
  Hashtbl.iter
    (fun parent sum ->
      match Hashtbl.find_opt tbl parent with
      | None -> ()
      | Some (pname, _, pdur, _, _) ->
          check
            (sum <= pdur +. eps_us)
            (Printf.sprintf
               "trace: children of %S sum to %.1fus > parent %.1fus (self \
                time would be negative)"
               pname sum pdur))
    child_sum;
  (* hierarchy is real: at least one span has an in-track parent *)
  check
    (List.exists
       (fun (_, (_, _, _, tid, parent)) ->
         parent >= 0
         &&
         match Hashtbl.find_opt tbl parent with
         | Some (_, _, _, ptid, _) -> ptid = tid
         | None -> false)
       spans)
    "trace: no nested spans at all"

let check_metrics root =
  check
    (Minijson.num_field root "schema_version" = Some 1.0)
    "metrics: schema_version <> 1";
  let counters =
    Option.value ~default:[] (Minijson.obj_field root "counters")
  in
  check (Minijson.field root "counters" <> None) "metrics: missing counters";
  let counter name =
    Option.bind (List.assoc_opt name counters) Minijson.as_num
  in
  check
    (Option.value ~default:0.0 (counter "tran.steps") > 0.0)
    "metrics: tran.steps missing or zero";
  check
    (Option.value ~default:0.0 (counter "tran.newton_iterations") > 0.0)
    "metrics: tran.newton_iterations missing or zero";
  let hists =
    Option.value ~default:[] (Minijson.arr_field root "histograms")
  in
  check (hists <> []) "metrics: no histograms";
  let hist_names = List.filter_map (fun h -> Minijson.str_field h "name") hists in
  List.iter
    (fun name ->
      check (List.mem name hist_names)
        (Printf.sprintf "metrics: missing histogram %S" name))
    [ "ac.pencil_solve_ns"; "dc.lu_factor_ns"; "tran.newton_iters_per_step" ];
  List.iter
    (fun h ->
      let name =
        Option.value ~default:"?" (Minijson.str_field h "name")
      in
      let count = Minijson.num_field h "count" in
      let buckets = Option.value ~default:[] (Minijson.arr_field h "buckets") in
      check (count <> None)
        (Printf.sprintf "metrics: histogram %S missing count" name);
      check (Minijson.num_field h "mean" <> None)
        (Printf.sprintf "metrics: histogram %S missing mean" name);
      let bucket_total =
        List.fold_left
          (fun acc b ->
            acc +. Option.value ~default:0.0 (Minijson.num_field b "count"))
          0.0 buckets
      in
      check
        (Some bucket_total = count)
        (Printf.sprintf
           "metrics: histogram %S bucket counts sum to %.0f <> count" name
           bucket_total);
      (* bucket bounds strictly ascending *)
      let les = List.filter_map (fun b -> Minijson.num_field b "le") buckets in
      let rec ascending = function
        | a :: (b :: _ as rest) -> a < b && ascending rest
        | _ -> true
      in
      check (ascending les)
        (Printf.sprintf "metrics: histogram %S bucket bounds not ascending"
           name))
    hists

let () =
  let trace_path, metrics_path =
    match Sys.argv with
    | [| _; t; m |] -> (t, m)
    | _ ->
        prerr_endline "usage: trace_check <trace.json> <metrics.json>";
        exit 2
  in
  let load what path =
    try Minijson.parse_file path
    with Minijson.Parse_error msg ->
      Printf.eprintf "trace_check: %s (%s): invalid JSON: %s\n" path what msg;
      exit 1
  in
  check_trace (load "trace" trace_path);
  check_metrics (load "metrics" metrics_path);
  match !check_failures with
  | [] -> print_endline "trace ok"
  | failures ->
      List.iter (fun m -> Printf.eprintf "trace_check: %s\n" m)
        (List.rev failures);
      exit 1
