(* Offline renderer for observability bundles written by
   `tft_extract --obs-dir`:

     obs_report BUNDLE_DIR [-o OUTDIR]

   Loads and validates the bundle (manifest, trace, metrics, diag,
   convergence.jsonl), then writes a self-contained HTML report —
   pole-migration SVG across VF iterations and recursion levels,
   residual-decay and rcond curves, a self-time table and histogram
   sparklines — plus an OpenMetrics text export. A malformed bundle
   exits nonzero with a typed reason naming the offending file. *)

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let run dir out_dir =
  match Obs_bundle.load dir with
  | bundle ->
      let out = Option.value out_dir ~default:dir in
      if not (Sys.file_exists out) then Sys.mkdir out 0o755;
      let html_path = Filename.concat out "report.html" in
      let om_path = Filename.concat out "metrics.om" in
      write_file html_path (Obs_render.render_html bundle);
      write_file om_path (Obs_render.openmetrics bundle);
      Printf.printf "wrote %s\nwrote %s\n" html_path om_path
  | exception Obs_bundle.Invalid { file; reason } ->
      Printf.eprintf "obs_report: %s\n"
        (Obs_bundle.describe_invalid ~file ~reason);
      exit 1

open Cmdliner

let dir_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"BUNDLE_DIR"
        ~doc:"Bundle directory written by $(b,tft_extract --obs-dir).")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"DIR"
        ~doc:
          "Write $(b,report.html) and $(b,metrics.om) here instead of \
           into the bundle directory.")

let cmd =
  let doc =
    "render an extraction observability bundle as a self-contained HTML \
     report and an OpenMetrics text export"
  in
  Cmd.v (Cmd.info "obs_report" ~doc) Term.(const run $ dir_arg $ out_arg)

let () = exit (Cmd.eval cmd)
