(* Command-line front end for the extraction pipeline:

     tft_extract -i netlist.cir --input Vin --output out \
       --train-freq 1e6 --train-ampl 0.5 --train-offset 0.3 \
       --fmin 1e4 --fmax 1e9 -o model.va
*)

let run netlist_path input output output_diff train_freq train_ampl train_offset
    f_min f_max points eps snapshots domains out_path export_format verbose =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Info)
  end;
  let netlist = Circuit.Parser.parse_file netlist_path in
  let out_spec =
    match (output, output_diff) with
    | Some node, None -> Engine.Mna.Node node
    | None, Some (p, n) -> Engine.Mna.Diff (p, n)
    | Some _, Some _ -> failwith "give either --output or --output-diff, not both"
    | None, None -> failwith "an output (--output or --output-diff) is required"
  in
  let period = 1.0 /. train_freq in
  let steps = snapshots * 4 in
  let training =
    {
      Tft_rvf.Pipeline.wave =
        Circuit.Netlist.Sine
          {
            offset = train_offset;
            ampl = train_ampl;
            freq = train_freq;
            phase = -.Float.pi /. 2.0;
          };
      t_stop = period;
      dt = period /. float_of_int steps;
      snapshot_every = 4;
    }
  in
  let config =
    let base =
      Tft_rvf.Pipeline.default_config_for ~points ~domains ~f_min ~f_max ~training ()
    in
    { base with Tft_rvf.Pipeline.rvf = { base.Tft_rvf.Pipeline.rvf with Rvf.eps } }
  in
  let outcome = Tft_rvf.Pipeline.extract ~config ~netlist ~input ~output:out_spec () in
  print_string (Tft_rvf.Report.summary outcome);
  let model = outcome.Tft_rvf.Pipeline.model in
  let text =
    match export_format with
    | "verilog-a" -> Hammerstein.Export.verilog_a model
    | "matlab" -> Hammerstein.Export.matlab model
    | "equations" -> Hammerstein.Hmodel.equations model
    | other -> failwith (Printf.sprintf "unknown export format %S" other)
  in
  match out_path with
  | None -> print_string text
  | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %s\n" path

open Cmdliner

let netlist_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "i"; "netlist" ] ~docv:"FILE" ~doc:"SPICE-like netlist file.")

let input_arg =
  Arg.(
    value & opt string "Vin"
    & info [ "input" ] ~docv:"NAME" ~doc:"Input source component name.")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "output" ] ~docv:"NODE" ~doc:"Output node.")

let output_diff_arg =
  Arg.(
    value
    & opt (some (pair ~sep:',' string string)) None
    & info [ "output-diff" ] ~docv:"P,N" ~doc:"Differential output node pair.")

let ffloat names ~default ~doc =
  Arg.(value & opt float default & info names ~doc)

let points_arg =
  Arg.(value & opt int 40 & info [ "points" ] ~doc:"Frequency grid points.")

let snapshots_arg =
  Arg.(value & opt int 100 & info [ "snapshots" ] ~doc:"TFT trajectory samples.")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Fan the TFT pencil solves out across $(docv) OCaml domains \
           (bit-identical to the sequential result; 1 = sequential).")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the exported model here.")

let format_arg =
  Arg.(
    value & opt string "equations"
    & info [ "format" ] ~docv:"FMT"
        ~doc:"Export format: equations, verilog-a or matlab.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log fitting progress.")

let cmd =
  let doc =
    "extract an analytical Hammerstein model from a nonlinear analog circuit \
     by recursive vector fitting of transfer function trajectories"
  in
  Cmd.v
    (Cmd.info "tft_extract" ~doc)
    Term.(
      const run $ netlist_arg $ input_arg $ output_arg $ output_diff_arg
      $ ffloat [ "train-freq" ] ~default:1e6 ~doc:"Training sine frequency [Hz]."
      $ ffloat [ "train-ampl" ] ~default:0.5 ~doc:"Training sine amplitude [V]."
      $ ffloat [ "train-offset" ] ~default:0.0 ~doc:"Training sine offset [V]."
      $ ffloat [ "fmin" ] ~default:1e3 ~doc:"Lowest TFT frequency [Hz]."
      $ ffloat [ "fmax" ] ~default:1e10 ~doc:"Highest TFT frequency [Hz]."
      $ points_arg
      $ ffloat [ "eps" ] ~default:1e-3 ~doc:"RVF error bound (relative)."
      $ snapshots_arg $ domains_arg $ out_arg $ format_arg $ verbose_arg)

let () = exit (Cmd.eval cmd)
