(* Command-line front end for the extraction pipeline:

     tft_extract -i netlist.cir --input Vin --output out \
       --train-freq 1e6 --train-ampl 0.5 --train-offset 0.3 \
       --fmin 1e4 --fmax 1e9 -o model.va

   `--builtin buffer` swaps the netlist file for the programmatic
   Section-IV buffer example; `--diag diag.json` runs the non-raising
   pipeline and writes the structured telemetry report; `--trace t.json`
   records a hierarchical Chrome-trace timeline (open in Perfetto) and
   `--metrics m.json` the counter/histogram registry. `--obs-dir DIR`
   subsumes all three: one observability hub feeds every channel and the
   run's complete record lands in DIR as a schema-versioned bundle
   (manifest, trace, metrics, diag, convergence.jsonl — and, on failure,
   a replayable repro capsule) renderable with `obs_report`. `--guard`
   arms the numerical guard layer, `--fault SITE[:seed]` arms one
   deterministic fault-injection probe (`--fault list` prints the
   registry). `--backend sparse` routes the engine stages through the
   compressed-column MNA assembly, sparse LU and rational-Krylov
   frequency sweeps (for large circuits; falls back to dense on a
   sparse-path failure). Any failure ends with a structured JSON error
   object on stderr and a nonzero exit. *)

let export_model ~export_format ~out_path model =
  let text =
    match export_format with
    | "verilog-a" -> Hammerstein.Export.verilog_a model
    | "matlab" -> Hammerstein.Export.matlab model
    | "equations" -> Hammerstein.Hmodel.equations model
    | other -> failwith (Printf.sprintf "unknown export format %S" other)
  in
  match out_path with
  | None -> print_string text
  | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %s\n" path

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let list_fault_sites () =
  print_endline "registered fault-injection sites:";
  List.iter
    (fun (s : Fault.site) ->
      Printf.printf "  %-24s %-28s %s\n" s.Fault.name s.Fault.where s.Fault.what)
    Fault.sites

(* Print the structured error object and exit nonzero: the one failure
   path shared by the raising and non-raising pipelines. *)
let fail_with_error_json report =
  prerr_string (Tft_rvf.Report.error_json report);
  exit 1

let report_fault_stats () =
  match Fault.disarm () with
  | None -> ()
  | Some s ->
      Printf.eprintf "fault %s: %d probe calls, %d fired\n%!" s.Fault.site
        s.Fault.calls s.Fault.fires

let backend_of_string = function
  | "dense" -> Engine.Mna.Dense
  | "sparse" -> Engine.Mna.Sparse
  | other ->
      failwith
        (Printf.sprintf "unknown backend %S (try: dense, sparse)" other)

let run netlist_path builtin input output output_diff train_freq train_ampl
    train_offset f_min f_max points eps snapshots domains backend_name out_path
    export_format diag_path trace_path metrics_path obs_dir guard_on
    fault_spec deadline checkpoint_dir resume verbose =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Info)
  end;
  if resume && checkpoint_dir = None then
    failwith "--resume requires --checkpoint-dir";
  (* without --resume a checkpoint directory starts clean: stale
     artifacts from previous runs are dropped, not resumed from *)
  (match checkpoint_dir with
  | Some dir when (not resume) && Sys.file_exists dir ->
      Array.iter
        (fun f ->
          if Filename.check_suffix f ".ckpt.json" then
            Sys.remove (Filename.concat dir f))
        (Sys.readdir dir)
  | _ -> ());
  let cancel =
    Option.map (fun s -> Cancel.create ~deadline_seconds:s ()) deadline
  in
  let fault_armed =
    match fault_spec with
    | None -> false
    | Some "list" ->
        list_fault_sites ();
        exit 0
    | Some spec ->
        let site, seed = Fault.parse spec in
        if not (Fault.known site) then
          failwith
            (Printf.sprintf "unknown fault site %S (try: --fault list)" site);
        Fault.arm ~site ~seed ();
        true
  in
  let guard = if guard_on then Some Guard.default else None in
  let backend = backend_of_string backend_name in
  let netlist, input, out_spec, config =
    match (builtin, netlist_path) with
    | Some "buffer", None ->
        let base = Tft_rvf.Pipeline.buffer_config ~snapshots ~domains () in
        let config =
          {
            base with
            Tft_rvf.Pipeline.backend;
            Tft_rvf.Pipeline.rvf = { base.Tft_rvf.Pipeline.rvf with Rvf.eps };
          }
        in
        ( Circuits.Buffer.netlist (),
          Circuits.Buffer.input_name,
          Circuits.Buffer.output,
          config )
    | Some other, None ->
        failwith (Printf.sprintf "unknown builtin circuit %S (try: buffer)" other)
    | Some _, Some _ -> failwith "give either --builtin or --netlist, not both"
    | None, None -> failwith "a netlist (-i) or --builtin is required"
    | None, Some path ->
        let netlist = Circuit.Parser.parse_file path in
        let out_spec =
          match (output, output_diff) with
          | Some node, None -> Engine.Mna.Node node
          | None, Some (p, n) -> Engine.Mna.Diff (p, n)
          | Some _, Some _ ->
              failwith "give either --output or --output-diff, not both"
          | None, None ->
              failwith "an output (--output or --output-diff) is required"
        in
        let period = 1.0 /. train_freq in
        let steps = snapshots * 4 in
        let training =
          {
            Tft_rvf.Pipeline.wave =
              Circuit.Netlist.Sine
                {
                  offset = train_offset;
                  ampl = train_ampl;
                  freq = train_freq;
                  phase = -.Float.pi /. 2.0;
                };
            t_stop = period;
            dt = period /. float_of_int steps;
            snapshot_every = 4;
          }
        in
        let config =
          let base =
            Tft_rvf.Pipeline.default_config_for ~points ~domains ~backend
              ~f_min ~f_max ~training ()
          in
          {
            base with
            Tft_rvf.Pipeline.rvf = { base.Tft_rvf.Pipeline.rvf with Rvf.eps };
          }
        in
        (netlist, input, out_spec, config)
  in
  let non_raising =
    diag_path <> None || trace_path <> None || metrics_path <> None
    || obs_dir <> None || verbose || fault_armed || deadline <> None
  in
  if not non_raising then begin
    match
      Tft_rvf.Pipeline.extract ?guard ?cancel ?checkpoint_dir ~config ~netlist
        ~input ~output:out_spec ()
    with
    | outcome ->
        print_string (Tft_rvf.Report.summary outcome);
        export_model ~export_format ~out_path outcome.Tft_rvf.Pipeline.model
    | exception
        (( Invalid_argument _ | Failure _ | Engine.Dc.No_convergence _
         | Linalg.Lu.Singular _ | Linalg.Clu.Singular _ | Guard.Violation _ )
         as e) ->
        let d = Diag.create () in
        Diag.error (Some d) ~stage:"pipeline" (Tft_rvf.Pipeline.describe_exn e);
        fail_with_error_json (Diag.report d)
  end
  else begin
    (* telemetry, a guard or an armed fault: run the non-raising pipeline
       so a failed extraction still produces its report, trace and
       metrics — and a structured error object. With --obs-dir the hub's
       own collectors serve every channel, so --diag/--trace/--metrics
       outputs coincide with the bundle's files. *)
    let obs = Option.map (fun _ -> Obs.create ()) obs_dir in
    let tracer =
      match obs with
      | Some o -> Some (Obs.tracer o)
      | None -> Option.map (fun _ -> Trace.create ()) trace_path
    in
    let trace = Option.map Trace.main tracer in
    let metrics =
      match obs with
      | Some o -> Some (Obs.metrics o)
      | None -> Option.map (fun _ -> Metrics.create ()) metrics_path
    in
    let outcome, report =
      Tft_rvf.Pipeline.try_extract ?guard ?cancel ?checkpoint_dir ?trace
        ?metrics ?obs ~config ~netlist ~input ~output:out_spec ()
    in
    report_fault_stats ();
    (match (obs_dir, obs) with
    | Some dir, Some o ->
        let num_i n = Minijson.Num (float_of_int n) in
        let config_json =
          [
            ( "circuit",
              match (builtin, netlist_path) with
              | Some b, _ -> Minijson.Str ("builtin:" ^ b)
              | None, Some p -> Minijson.Str p
              | None, None -> Minijson.Null );
            ("input", Minijson.Str input);
            ( "output",
              match out_spec with
              | Engine.Mna.Node n -> Minijson.Str n
              | Engine.Mna.Diff (p, n) -> Minijson.Str (p ^ "," ^ n) );
            ("train_freq_hz", Minijson.Num train_freq);
            ("train_ampl", Minijson.Num train_ampl);
            ("train_offset", Minijson.Num train_offset);
            ("f_min_hz", Minijson.Num f_min);
            ("f_max_hz", Minijson.Num f_max);
            ("points", num_i points);
            ("eps", Minijson.Num eps);
            ("snapshots", num_i snapshots);
            ("domains", num_i domains);
            ("backend", Minijson.Str backend_name);
            ("guard", Minijson.Bool guard_on);
            ( "fault",
              match fault_spec with
              | Some s -> Minijson.Str s
              | None -> Minijson.Null );
            ( "deadline_seconds",
              match deadline with
              | Some s -> Minijson.Num s
              | None -> Minijson.Null );
            ( "checkpoint_dir",
              match checkpoint_dir with
              | Some d -> Minijson.Str d
              | None -> Minijson.Null );
            ("resume", Minijson.Bool resume);
          ]
        in
        let seed =
          match fault_spec with
          | Some spec -> snd (Fault.parse spec)
          | None -> 0
        in
        let status = if outcome = None then "failed" else "ok" in
        let manifest =
          Obs_bundle.manifest ~tool:"tft_extract" ~status ~seed
            ~config:config_json ()
        in
        let repro =
          (* the replayable capsule: everything needed to re-run the
             failing extraction (circuit + options + seed) *)
          if outcome = None then
            Some
              (Minijson.Obj
                 [
                   ("kind", Minijson.Str "repro-capsule");
                   ("tool", Minijson.Str "tft_extract");
                   ("options", Minijson.Obj config_json);
                   ("seed", num_i seed);
                 ])
          else None
        in
        Obs_bundle.write ~dir ~manifest ?repro o;
        Printf.eprintf "wrote obs bundle to %s\n%!" dir
    | _, _ -> ());
    (match diag_path with
    | None -> ()
    | Some path ->
        write_file path (Tft_rvf.Report.diag_json report);
        Printf.eprintf "wrote diagnostics to %s\n%!" path);
    (match (trace_path, tracer) with
    | Some path, Some tr ->
        write_file path (Trace.chrome_json tr);
        Printf.eprintf "wrote trace to %s\n%!" path;
        if verbose then prerr_string (Trace.summary tr)
    | _, _ -> ());
    (match (metrics_path, metrics) with
    | Some path, Some m ->
        write_file path (Metrics.to_json (Metrics.snapshot m));
        Printf.eprintf "wrote metrics to %s\n%!" path;
        if verbose then prerr_string (Metrics.summary (Metrics.snapshot m))
    | _, _ -> ());
    if verbose then prerr_string (Tft_rvf.Report.diag_summary report);
    match outcome with
    | None -> fail_with_error_json report
    | Some outcome ->
        print_string (Tft_rvf.Report.summary outcome);
        export_model ~export_format ~out_path outcome.Tft_rvf.Pipeline.model
  end

open Cmdliner

let netlist_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "i"; "netlist" ] ~docv:"FILE"
        ~doc:"SPICE-like netlist file (or use $(b,--builtin)).")

let builtin_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "builtin" ] ~docv:"NAME"
        ~doc:
          "Use a built-in example circuit instead of a netlist file. \
           Currently: $(b,buffer) (the paper's Section-IV four-stage \
           buffer, with its tuned training wave, grid and input/output \
           selection).")

let input_arg =
  Arg.(
    value & opt string "Vin"
    & info [ "input" ] ~docv:"NAME" ~doc:"Input source component name.")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "output" ] ~docv:"NODE" ~doc:"Output node.")

let output_diff_arg =
  Arg.(
    value
    & opt (some (pair ~sep:',' string string)) None
    & info [ "output-diff" ] ~docv:"P,N" ~doc:"Differential output node pair.")

let ffloat names ~default ~doc =
  Arg.(value & opt float default & info names ~doc)

let points_arg =
  Arg.(value & opt int 40 & info [ "points" ] ~doc:"Frequency grid points.")

let snapshots_arg =
  Arg.(value & opt int 100 & info [ "snapshots" ] ~doc:"TFT trajectory samples.")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Run the extraction on a warm pool of $(docv) OCaml domains, \
           spawned once and reused by every stage: TFT pencil solves, \
           VF relocation blocks and per-pole residue fits all fan out \
           (bit-identical to the sequential result; 1 = sequential). \
           Worthwhile only when the host actually has $(docv) cores.")

let backend_arg =
  Arg.(
    value & opt string "dense"
    & info [ "backend" ] ~docv:"NAME"
        ~doc:
          "Linear-algebra backend for the engine stages: $(b,dense) \
           (LAPACK-style dense LU at every linearization and grid point) \
           or $(b,sparse) (compressed-column MNA assembly, sparse LU \
           Newton solves and rational-Krylov frequency sweeps — a few \
           shifted factorizations per snapshot instead of one dense \
           factorization per grid point, with every projected transfer \
           value certified against the true sparse residual). The two \
           backends agree to solver tolerance; sparse is built for \
           circuits with thousands of nodes. A sparse-path failure \
           escalates back to the dense backend automatically.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the exported model here.")

let format_arg =
  Arg.(
    value & opt string "equations"
    & info [ "format" ] ~docv:"FMT"
        ~doc:"Export format: equations, verilog-a or matlab.")

let diag_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "diag" ] ~docv:"FILE"
        ~doc:
          "Write a structured JSON diagnostics report (per-stage timings, \
           Newton/fitting counters, warnings) to $(docv). Implies the \
           non-raising pipeline: a failed extraction still writes the \
           report (naming the failing stage) and exits with status 1.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a hierarchical wall-clock trace of the extraction \
           (per-stage, per-transient-step, per-chunk and per-VF-iteration \
           spans, one track per OCaml domain) and write it to $(docv) in \
           Chrome trace-event JSON — load it in Perfetto \
           (ui.perfetto.dev) or chrome://tracing. Implies the non-raising \
           pipeline; the trace is written even when extraction fails.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the quantitative metrics registry (Newton-iteration, \
           LU and pencil-solve timing histograms, pool load-balance \
           ratios) to $(docv) as schema-versioned JSON. Implies the \
           non-raising pipeline.")

let obs_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "obs-dir" ] ~docv:"DIR"
        ~doc:
          "Write the run's complete observability bundle into $(docv) \
           (created if missing): manifest.json (schema version, host \
           shape, seed, configuration), trace.json, metrics.json, \
           diag.json, convergence.jsonl (per-iteration VF pole \
           positions, sigma residuals, rcond series, escalations) and — \
           on failure — repro.json, a replayable capsule. One hub feeds \
           every channel, so combining with $(b,--diag)/$(b,--trace)/\
           $(b,--metrics) writes the same data to those files. Render \
           with $(b,obs_report). Implies the non-raising pipeline.")

let guard_arg =
  Arg.(
    value & flag
    & info [ "guard" ]
        ~doc:
          "Enable the numerical guard layer: reciprocal-condition floors \
           on every LU factorization, NaN/Inf sentinels on solver and \
           fitting outputs, transient step-halving recovery, snapshot \
           quarantine (neighbor interpolation) and vector-fitting \
           pole-runaway checks. A clean guarded run produces a \
           bit-identical model; detected corruption is repaired or \
           reported as a typed failure.")

let fault_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault" ] ~docv:"SITE[:SEED]"
        ~doc:
          "Arm one deterministic fault-injection probe before the \
           extraction (for testing the recovery paths; implies the \
           non-raising pipeline). $(docv) names a registered site, \
           optionally with a seed selecting the firing schedule. \
           $(b,--fault list) prints the site registry and exits.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Abort the extraction after $(docv) of wall clock. The token is \
           probed at every Newton iteration, transient step, pencil solve, \
           VF relocation sweep and pool chunk boundary, so even a hung \
           stage is reaped promptly. A tripped deadline exits nonzero with \
           a structured JSON error object naming the stage that overran \
           (implies the non-raising pipeline).")

let checkpoint_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint-dir" ] ~docv:"DIR"
        ~doc:
          "Persist each completed pipeline stage (training transient, TFT \
           dataset, settled fit) into $(docv) as schema-versioned, \
           fingerprint-addressed JSON artifacts. Without $(b,--resume) the \
           directory is cleared of previous artifacts first. Combine with \
           $(b,--deadline) to make interrupted runs resumable.")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Resume from the artifacts already in $(b,--checkpoint-dir): \
           stages with a settled artifact matching this run's fingerprint \
           (same netlist, training schedule, grid and fitting config) are \
           loaded from disk instead of recomputed, and the resumed model \
           is bit-identical to an uninterrupted run's. Artifacts from a \
           different configuration are ignored and recomputed.")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ]
        ~doc:
          "Log fitting progress and print the diagnostics summary to \
           stderr.")

let cmd =
  let doc =
    "extract an analytical Hammerstein model from a nonlinear analog circuit \
     by recursive vector fitting of transfer function trajectories"
  in
  Cmd.v
    (Cmd.info "tft_extract" ~doc)
    Term.(
      const run $ netlist_arg $ builtin_arg $ input_arg $ output_arg
      $ output_diff_arg
      $ ffloat [ "train-freq" ] ~default:1e6 ~doc:"Training sine frequency [Hz]."
      $ ffloat [ "train-ampl" ] ~default:0.5 ~doc:"Training sine amplitude [V]."
      $ ffloat [ "train-offset" ] ~default:0.0 ~doc:"Training sine offset [V]."
      $ ffloat [ "fmin" ] ~default:1e3 ~doc:"Lowest TFT frequency [Hz]."
      $ ffloat [ "fmax" ] ~default:1e10 ~doc:"Highest TFT frequency [Hz]."
      $ points_arg
      $ ffloat [ "eps" ] ~default:1e-3 ~doc:"RVF error bound (relative)."
      $ snapshots_arg $ domains_arg $ backend_arg $ out_arg $ format_arg
      $ diag_arg
      $ trace_arg $ metrics_arg $ obs_dir_arg $ guard_arg $ fault_arg
      $ deadline_arg $ checkpoint_dir_arg $ resume_arg $ verbose_arg)

let () = exit (Cmd.eval cmd)
